//! Job identities, lifecycle statuses and learner phases.

use std::fmt;
use std::str::FromStr;

/// Unique identifier of a training job.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(String);

impl JobId {
    /// Wraps an id string.
    pub fn new(s: impl Into<String>) -> Self {
        JobId(s.into())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for JobId {
    fn from(s: &str) -> Self {
        JobId(s.to_owned())
    }
}

/// Externally visible job lifecycle (the statuses users poll; paper §II:
/// "users expect periodic and accurate status updates (e.g., whether the
/// job is DEPLOYING, PROCESSING)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobStatus {
    /// Accepted and durably recorded, but the tenant is over its GPU
    /// quota; held in the weighted fair queue until capacity frees up.
    Queued,
    /// Admitted against the tenant's quota; awaiting deployment.
    Pending,
    /// The Guardian is provisioning resources.
    Deploying,
    /// Learners are training.
    Processing,
    /// Training finished; results are being copied to the object store.
    Storing,
    /// Results stored; everything cleaned up.
    Completed,
    /// Gave up (deployment retries exhausted, or learners failed hard).
    Failed,
    /// Terminated by the user.
    Killed,
}

impl JobStatus {
    /// Position in the lifecycle; equal ranks are both terminal.
    pub fn rank(self) -> u8 {
        match self {
            JobStatus::Queued => 0,
            JobStatus::Pending => 1,
            JobStatus::Deploying => 2,
            JobStatus::Processing => 3,
            JobStatus::Storing => 4,
            JobStatus::Completed | JobStatus::Failed | JobStatus::Killed => 5,
        }
    }

    /// `true` for end states.
    pub fn is_terminal(self) -> bool {
        self.rank() == 5
    }

    /// `true` when moving from `self` to `next` goes forward in the
    /// lifecycle (never backwards, never out of a terminal state).
    pub fn can_advance_to(self, next: JobStatus) -> bool {
        !self.is_terminal() && next.rank() > self.rank()
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobStatus::Queued => "QUEUED",
            JobStatus::Pending => "PENDING",
            JobStatus::Deploying => "DEPLOYING",
            JobStatus::Processing => "PROCESSING",
            JobStatus::Storing => "STORING",
            JobStatus::Completed => "COMPLETED",
            JobStatus::Failed => "FAILED",
            JobStatus::Killed => "KILLED",
        };
        f.write_str(s)
    }
}

/// Error parsing a [`JobStatus`] / [`LearnerPhase`] from its wire string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStatusError(pub String);

impl fmt::Display for ParseStatusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown status: {}", self.0)
    }
}

impl std::error::Error for ParseStatusError {}

impl FromStr for JobStatus {
    type Err = ParseStatusError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "QUEUED" => Ok(JobStatus::Queued),
            "PENDING" => Ok(JobStatus::Pending),
            "DEPLOYING" => Ok(JobStatus::Deploying),
            "PROCESSING" => Ok(JobStatus::Processing),
            "STORING" => Ok(JobStatus::Storing),
            "COMPLETED" => Ok(JobStatus::Completed),
            "FAILED" => Ok(JobStatus::Failed),
            "KILLED" => Ok(JobStatus::Killed),
            other => Err(ParseStatusError(other.to_owned())),
        }
    }
}

/// Per-learner phase, as recorded by the controller in etcd (§III-f).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LearnerPhase {
    /// Waiting for / fetching training data.
    Downloading,
    /// Training; carries the last reported global iteration.
    Processing {
        /// Last reported iteration.
        iteration: u64,
    },
    /// Exited 0.
    Completed,
    /// Failed permanently (restart budget exhausted).
    Failed,
}

impl LearnerPhase {
    /// `true` once the learner finished successfully.
    pub fn is_completed(&self) -> bool {
        matches!(self, LearnerPhase::Completed)
    }

    /// `true` when the learner failed permanently.
    pub fn is_failed(&self) -> bool {
        matches!(self, LearnerPhase::Failed)
    }

    /// The reported iteration, when training.
    pub fn iteration(&self) -> Option<u64> {
        match self {
            LearnerPhase::Processing { iteration } => Some(*iteration),
            _ => None,
        }
    }
}

impl fmt::Display for LearnerPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnerPhase::Downloading => f.write_str("DOWNLOADING"),
            LearnerPhase::Processing { iteration } => write!(f, "PROCESSING iter={iteration}"),
            LearnerPhase::Completed => f.write_str("COMPLETED"),
            LearnerPhase::Failed => f.write_str("FAILED"),
        }
    }
}

impl FromStr for LearnerPhase {
    type Err = ParseStatusError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "DOWNLOADING" {
            return Ok(LearnerPhase::Downloading);
        }
        if s == "COMPLETED" {
            return Ok(LearnerPhase::Completed);
        }
        if s == "FAILED" {
            return Ok(LearnerPhase::Failed);
        }
        if let Some(rest) = s.strip_prefix("PROCESSING iter=") {
            if let Ok(iteration) = rest.parse() {
                return Ok(LearnerPhase::Processing { iteration });
            }
        }
        Err(ParseStatusError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_lifecycle_order() {
        use JobStatus::*;
        assert!(Queued.can_advance_to(Pending));
        assert!(Queued.can_advance_to(Killed));
        assert!(Pending.can_advance_to(Deploying));
        assert!(Deploying.can_advance_to(Processing));
        assert!(Processing.can_advance_to(Storing));
        assert!(Storing.can_advance_to(Completed));
        assert!(Pending.can_advance_to(Failed));
        assert!(Deploying.can_advance_to(Killed));

        // Never backwards.
        assert!(!Pending.can_advance_to(Queued));
        assert!(!Processing.can_advance_to(Deploying));
        assert!(!Storing.can_advance_to(Processing));
        // Never out of a terminal state.
        assert!(!Completed.can_advance_to(Failed));
        assert!(!Failed.can_advance_to(Completed));
        assert!(!Killed.can_advance_to(Processing));
        // Not to itself.
        assert!(!Processing.can_advance_to(Processing));
    }

    #[test]
    fn status_string_roundtrip() {
        for s in [
            JobStatus::Queued,
            JobStatus::Pending,
            JobStatus::Deploying,
            JobStatus::Processing,
            JobStatus::Storing,
            JobStatus::Completed,
            JobStatus::Failed,
            JobStatus::Killed,
        ] {
            assert_eq!(s.to_string().parse::<JobStatus>().unwrap(), s);
        }
        assert!("BOGUS".parse::<JobStatus>().is_err());
    }

    #[test]
    fn terminal_detection() {
        assert!(!JobStatus::Queued.is_terminal());
        assert!(!JobStatus::Processing.is_terminal());
        assert!(JobStatus::Completed.is_terminal());
        assert!(JobStatus::Failed.is_terminal());
        assert!(JobStatus::Killed.is_terminal());
    }

    #[test]
    fn learner_phase_roundtrip() {
        for p in [
            LearnerPhase::Downloading,
            LearnerPhase::Processing { iteration: 12345 },
            LearnerPhase::Completed,
            LearnerPhase::Failed,
        ] {
            assert_eq!(p.to_string().parse::<LearnerPhase>().unwrap(), p);
        }
        assert!("PROCESSING iter=abc".parse::<LearnerPhase>().is_err());
        assert!("".parse::<LearnerPhase>().is_err());
    }

    #[test]
    fn learner_phase_accessors() {
        assert!(LearnerPhase::Completed.is_completed());
        assert!(LearnerPhase::Failed.is_failed());
        assert_eq!(
            LearnerPhase::Processing { iteration: 7 }.iteration(),
            Some(7)
        );
        assert_eq!(LearnerPhase::Downloading.iteration(), None);
    }

    #[test]
    fn job_id_basics() {
        let id = JobId::new("job-1");
        assert_eq!(id.as_str(), "job-1");
        assert_eq!(id.to_string(), "job-1");
        assert_eq!(JobId::from("job-1"), id);
    }
}
