//! # dlaas-core — the DLaaS platform
//!
//! A faithful reproduction of the orchestration system described in
//! *“Dependability in a Multi-tenant Multi-framework Deep Learning
//! as-a-Service Platform”* (Boag et al., DSN 2018): the IBM DLaaS control
//! plane, rebuilt in Rust over simulated substrates (Kubernetes, etcd on
//! Raft, a journaled document store, NFS, a cloud object store and a GPU
//! performance model).
//!
//! The layering follows the paper's Figure 1:
//!
//! * **Core services** — the API service (durable
//!   submission, auth, metering) and the LCM (deployment, GC,
//!   termination), both as Kubernetes Deployments behind Services;
//! * **Per-job components** — the *Guardian* (a Kubernetes Job providing
//!   atomic deployment with rollback-and-retry) and the *helper pod*
//!   (controller, load-data, log-collector, store-results) sharing an NFS
//!   volume with the learners;
//! * **Learners** — framework containers in a StatefulSet, training at a
//!   modelled rate, checkpointing to the object store, restarted by
//!   Kubernetes after crashes.
//!
//! # Examples
//!
//! ```no_run
//! use dlaas_core::{DlaasPlatform, JobStatus, Tenant, TrainingManifest};
//! use dlaas_gpu::{DlModel, Framework, GpuKind};
//! use dlaas_sim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new(42);
//! let platform = DlaasPlatform::bootstrapped(&mut sim);
//! platform.add_tenant(&Tenant::new("acme", "key-1", 16)).expect("bootstrap tenant insert");
//! platform.seed_dataset("acme-data", "imagenet/", 20_000_000_000);
//! platform.create_bucket("acme-results");
//!
//! let manifest = TrainingManifest::builder("demo")
//!     .framework(Framework::TensorFlow)
//!     .model(DlModel::Resnet50)
//!     .gpus(GpuKind::K80, 1)
//!     .data("acme-data", "imagenet/", 20_000_000_000)
//!     .results("acme-results")
//!     .iterations(1_000)
//!     .build()?;
//!
//! let client = platform.client("alice", "key-1");
//! client.submit(&mut sim, manifest, |_sim, r| { r.unwrap(); });
//! sim.run_for(SimDuration::from_hours(2));
//! # Ok::<(), dlaas_core::ManifestError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod client;
mod config;
pub mod fairness;
mod guardian;
mod handles;
mod helper;
pub mod invariants;
mod job;
mod lcm;
mod learner;
mod manifest;
pub mod metrics;
mod mongo;
pub mod ownership;
pub mod paths;
mod platform;
mod proto;
mod tenant;

pub use client::{ClientError, DlaasClient};
pub use config::CoreConfig;
pub use handles::{Handles, API_SERVICE, LCM_SERVICE};
pub use invariants::{
    check_all as check_invariants, InvariantBounds, InvariantMonitor, InvariantReport,
    InvariantViolation,
};
pub use job::{JobId, JobStatus, LearnerPhase, ParseStatusError};
pub use manifest::{ManifestError, TrainingManifest, TrainingManifestBuilder};
pub use mongo::{MetaClient, MetaError, JOBS, TENANTS};
pub use ownership::{OwnershipConflict, ShardTracker};
pub use platform::{DlaasPlatform, GpuNodeSpec, PlatformConfig};
pub use proto::{CoreRequest, CoreResponse, CoreRpc, JobInfo};
pub use tenant::Tenant;
