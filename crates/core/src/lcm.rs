//! The Lifecycle Manager (LCM).
//!
//! "The LCM is responsible for the job from submission to
//! completion/failure, i.e., the deployment, monitoring, garbage
//! collection, and user-initiated termination of the job. […] To deploy a
//! DL job, the LCM simply instantiates a component called the Guardian
//! with all the metadata of the DL job [as] a K8S Job." (§III-c, §III-d)
//!
//! The LCM is stateless: the metadata store is the source of truth. Its
//! periodic scan is the dependability backstop that makes the platform
//! self-healing across its own crashes:
//!
//! * accepted jobs whose `DeployJob` message was lost (e.g. the LCM died
//!   right after the API acknowledged) are picked up and deployed,
//! * jobs whose Guardian exhausted its K8s backoff limit are failed,
//! * terminal jobs with leftover cluster resources are garbage-collected.
//!
//! The scan is watch-driven: each tick pulls the jobs collection's change
//! feed above a watermark (`FindChanged`) into in-memory watchlists and
//! sweeps only those, so per-tick work is proportional to what changed
//! plus what is actually being watched — not to the total number of jobs
//! ever submitted. The watchlists are a cache, not state: an LCM restart
//! begins at watermark 0, which replays the full feed and rebuilds them,
//! preserving the statelessness the paper's recovery story relies on.
//!
//! # Replicated LCM: lease-sharded job ownership
//!
//! With more than one replica, every replica ingests the full change feed
//! (the watchlists are cheap), but *sweeps* only the jobs whose id hashes
//! into a shard it owns ([`paths::job_shard`]). Ownership is arbitrated
//! through etcd: each replica holds a lease
//! ([`crate::config::CoreConfig::lcm_lease_ttl`]) and CAS-acquires
//! absent [`paths::lcm_shard_owner`] keys with that lease attached. When
//! a replica dies, its lease expires, etcd deletes its owner keys, and
//! the survivors race ordinary delete watch events (plus a periodic
//! reconcile backstop) to adopt the orphaned shards — CAS picks exactly
//! one winner per shard.
//!
//! Two defects this design exists to prevent, each with a regression
//! test in `tests/tests/recovery_bugs.rs`:
//!
//! * **Double drive** — a replica that cannot refresh its lease keeps
//!   sweeping while a survivor adopts its shards. Prevented by a local
//!   *fence*: the deadline is stamped from the **send** time of the
//!   grant/keepalive that established it, so it is always ≤ the deadline
//!   the server holds; sweeping stops at the fence, strictly before the
//!   server can delete the owner keys and let anyone else in.
//! * **Orphaned shard** — listing the owner keys *before* watching the
//!   prefix misses a deletion between the two, leaving a shard unswept
//!   until some unrelated event. Prevented by registering the watch
//!   first and treating the initial listing as the first reconcile.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use dlaas_docstore::Value;
use dlaas_etcd::{EtcdClient, KvEvent, LeaseId};
use dlaas_kube::{
    labels, pod_addr, Cleanup, ContainerSpec, ImageRef, JobStatus as KubeJobStatus, PodSpec,
    ProcessCtx, Resources,
};
use dlaas_sim::{Sim, SimTime};

use crate::fairness::{admission_plan, QueuedJob, TenantShare};
use crate::handles::Handles;
use crate::job::{JobId, JobStatus};
use crate::mongo::{MetaClient, JOBS, TENANTS};
use crate::paths;
use crate::proto::{CoreRequest, CoreResponse};
use crate::tenant::Tenant;

/// The shard whose owner runs the admission arbiter. Fair-queue admission
/// is a global decision (usage ratios compare across tenants), so it runs
/// on exactly one replica — and shard ownership already provides an
/// at-most-one primitive with lease-fenced failover for free.
const ARBITER_SHARD: u32 = 0;

/// Behavior factory for the LCM container.
pub fn lcm_behavior(h: Handles, sim: &mut Sim, ctx: ProcessCtx) -> Cleanup {
    let addr = pod_addr(&ctx.pod);
    let meta = h.meta(&ctx.pod);
    ctx.record(sim, "LCM instance up");

    let h2 = h.clone();
    let ctx2 = ctx.clone();
    let meta2 = meta.clone();
    h.rpc.serve(addr.clone(), move |sim, req, responder| {
        if !ctx2.is_alive() {
            return;
        }
        match req {
            CoreRequest::DeployJob { job } => {
                ensure_guardian(sim, &h2, &job);
                responder.ok(sim, CoreResponse::Ok);
            }
            CoreRequest::StopJob { job } => {
                let h3 = h2.clone();
                let job2 = job.clone();
                meta2.advance_status(sim, &job, JobStatus::Killed, move |sim, r| match r {
                    Ok(_) => {
                        teardown_job(sim, &h3, &job2, true);
                        responder.ok(sim, CoreResponse::Ok);
                    }
                    Err(e) => responder.err(sim, e.to_string()),
                });
            }
            _ => responder.err(sim, "not an LCM endpoint"),
        }
    });

    // Shard-ownership machinery. The watch is registered BEFORE the
    // first listing (inside the post-grant reconcile): list-then-watch
    // would miss an owner-key deletion between the two and orphan the
    // shard until the next unrelated event.
    let rep = Rc::new(Replica {
        h: h.clone(),
        etcdc: h.etcd_client(&ctx.pod),
        pod: ctx.pod.clone(),
        alive: ctx.alive_flag(),
        own: RefCell::new(Ownership {
            lease: None,
            fence: SimTime::ZERO,
            granting: false,
            owned: BTreeSet::new(),
        }),
    });
    let rep_watch = rep.clone();
    rep.etcdc
        // dlaas-lint: allow(resource-leak): the watch lives exactly as long as the replica — the pod cleanup closure below closes the per-incarnation etcd client, which cancels every watch registered on it
        .watch_prefix(sim, paths::LCM_SHARDS_PREFIX, move |sim, ev| {
            if !rep_watch.alive.get() {
                return;
            }
            if let KvEvent::Delete { key, .. } = ev {
                if let Some(shard) = key
                    .strip_prefix(paths::LCM_SHARDS_PREFIX)
                    .and_then(|s| s.parse::<u32>().ok())
                {
                    // An owner key vanished: its holder's lease expired.
                    // Every survivor races for it; the CAS picks one.
                    try_acquire(sim, &rep_watch, shard, "watch");
                }
            }
        });
    ensure_lease(sim, &rep);
    let rep_ka = rep.clone();
    let ka_timer = dlaas_sim::every(sim, h.config.lcm_lease_keepalive, move |sim, _n| {
        if !rep_ka.alive.get() {
            return false;
        }
        keepalive_tick(sim, &rep_ka);
        true
    });

    // The background scan. The watchlist cache dies with this
    // incarnation; a successor starts at watermark 0 and rebuilds it
    // from the full change feed.
    let scan_period = h.config.lcm_scan;
    let h3 = h.clone();
    let meta3 = meta.clone();
    let alive = ctx.alive_flag();
    let state = Rc::new(RefCell::new(ScanState::default()));
    let rep_scan = rep.clone();
    let timer = dlaas_sim::every(sim, scan_period, move |sim, _n| {
        if !alive.get() {
            return false;
        }
        reconcile(sim, &rep_scan);
        scan(sim, &h3, &meta3, &state, &rep_scan);
        true
    });

    let rpc = h.rpc.clone();
    Box::new(move |sim| {
        timer.cancel();
        ka_timer.cancel();
        // Stand down in the ledger so a successor's sweeps are not
        // charged as conflicts with this incarnation. The lease itself
        // is deliberately NOT revoked — a real crash could not have, and
        // expiry-driven takeover is the recovery path under test.
        rep.h.shard_tracker.release_all(sim, &rep.pod);
        rep.own.borrow_mut().owned.clear();
        // Close the per-incarnation client so a restarted pod of the
        // same name can register its own watch endpoint.
        rep.etcdc.close(sim);
        rpc.stop_serving(&addr);
    })
}

/// A replica's local view of its lease and shard ownership. Everything
/// here is conservative cache: etcd's replicated lease + owner keys are
/// the source of truth, and the fence guarantees this view never claims
/// more than the server would grant.
struct Ownership {
    lease: Option<LeaseId>,
    /// Conservative local expiry: stamped from the **send** time of the
    /// grant/keepalive that established it, so it is always ≤ the
    /// deadline the server holds (the server stamps at apply time, which
    /// is later). Sweeping stops at the fence — strictly before the
    /// server could delete this replica's owner keys.
    fence: SimTime,
    /// A grant RPC is in flight (avoid stacking retries).
    granting: bool,
    /// Shards this incarnation acquired under `lease`.
    owned: BTreeSet<u32>,
}

/// Per-incarnation shard-ownership context shared by the watch handler,
/// the keepalive timer and the scan timer.
struct Replica {
    h: Handles,
    etcdc: EtcdClient,
    pod: String,
    alive: Rc<Cell<bool>>,
    own: RefCell<Ownership>,
}

/// `true` while the replica holds a lease whose local fence has not
/// lapsed — the precondition for acquiring shards and for sweeping.
fn lease_valid(rep: &Replica, now: SimTime) -> bool {
    let o = rep.own.borrow();
    o.lease.is_some() && now < o.fence
}

/// `true` when this replica may sweep `job`: its shard is owned and the
/// lease fence is still ahead.
fn owns_job(rep: &Replica, now: SimTime, job: &JobId) -> bool {
    lease_valid(rep, now)
        && rep
            .own
            .borrow()
            .owned
            .contains(&paths::job_shard(job, rep.h.config.lcm_shards))
}

/// Grants a fresh lease if none is held and no grant is in flight. On
/// success the fence starts at send-time + TTL and a reconcile pass
/// races for unowned shards.
fn ensure_lease(sim: &mut Sim, rep: &Rc<Replica>) {
    {
        let mut o = rep.own.borrow_mut();
        if o.lease.is_some() || o.granting {
            return;
        }
        o.granting = true;
    }
    let sent = sim.now();
    let ttl = rep.h.config.lcm_lease_ttl;
    let rep2 = rep.clone();
    // dlaas-lint: allow(resource-leak): the lease IS the liveness signal — releasing it client-side on a fence lapse is impossible by construction (etcd was unreachable), so server-side expiry is the designed release path; the pod cleanup closes the client
    rep.etcdc.lease_grant(sim, ttl, move |sim, r| {
        rep2.own.borrow_mut().granting = false;
        if !rep2.alive.get() {
            return;
        }
        // On Err (etcd unreachable) there is nothing to do: without a
        // lease the replica owns nothing and sweeps nothing, and the
        // keepalive timer re-enters ensure_lease every tick — the retry
        // IS the handling.
        if let Ok(id) = r {
            {
                let mut o = rep2.own.borrow_mut();
                o.lease = Some(id);
                o.fence = sent + ttl;
            }
            sim.record("lcm", format!("{} holds lease {id}", rep2.pod));
            arm_fence(sim, &rep2);
            reconcile(sim, &rep2);
        }
    });
}

/// One keepalive-timer tick: refresh the lease, or stand down and
/// re-grant when it cannot be confirmed alive.
fn keepalive_tick(sim: &mut Sim, rep: &Rc<Replica>) {
    let Some(id) = rep.own.borrow().lease else {
        ensure_lease(sim, rep);
        return;
    };
    if !lease_valid(rep, sim.now()) {
        // The fence lapsed without a confirmed refresh: ownership is
        // forfeit NOW, before the server's (later) deadline can fire and
        // let another replica in — this ordering is what makes double
        // drive impossible.
        drop_ownership(sim, rep, "fence");
        ensure_lease(sim, rep);
        return;
    }
    let sent = sim.now();
    let ttl = rep.h.config.lcm_lease_ttl;
    let rep2 = rep.clone();
    rep.etcdc.lease_keepalive(sim, id, move |sim, r| {
        if !rep2.alive.get() {
            return;
        }
        match r {
            Ok(true) => {
                let extended = {
                    let mut o = rep2.own.borrow_mut();
                    // Extend only if this is still the lease we live on.
                    if o.lease == Some(id) {
                        o.fence = o.fence.max(sent + ttl);
                        true
                    } else {
                        false
                    }
                };
                if extended {
                    arm_fence(sim, &rep2);
                }
            }
            Ok(false) => {
                // The server no longer knows the lease: it expired and
                // the owner keys are gone (or going). Stand down and
                // start over with a fresh lease.
                sim.metrics().inc(
                    crate::metrics::LCM_LEASE_KEEPALIVE_FAILURES,
                    &[("reason", "expired")],
                );
                if rep2.own.borrow().lease == Some(id) {
                    drop_ownership(sim, &rep2, "expired");
                    ensure_lease(sim, &rep2);
                }
            }
            Err(_) => {
                // etcd unreachable: keep the current fence. If refreshes
                // keep failing, the fence lapses and the next tick
                // stands down.
                sim.metrics().inc(
                    crate::metrics::LCM_LEASE_KEEPALIVE_FAILURES,
                    &[("reason", "unreachable")],
                );
            }
        }
    });
}

/// Schedules a watchdog at the current fence: if the fence has not
/// moved by then, ownership is forfeit at that exact instant rather
/// than at the next keepalive tick up to a whole period later. The
/// ledger must show the release no later than the server's deadline
/// (which is ≥ the fence) so a survivor's claim never overlaps ours.
/// A watchdog made stale by a later extension wakes, finds the fence
/// ahead of it, and does nothing.
fn arm_fence(sim: &mut Sim, rep: &Rc<Replica>) {
    let fence = rep.own.borrow().fence;
    let rep2 = rep.clone();
    sim.schedule_at(fence, move |sim| {
        if !rep2.alive.get() {
            return;
        }
        let lapsed = {
            let o = rep2.own.borrow();
            o.lease.is_some() && sim.now() >= o.fence
        };
        if lapsed {
            drop_ownership(sim, &rep2, "fence");
            ensure_lease(sim, &rep2);
        }
    });
}

/// Releases every shard and forgets the lease, updating the ledger and
/// metrics. Called from the fence/expiry paths only — the CAS'd owner
/// keys are left to die with the lease.
fn drop_ownership(sim: &mut Sim, rep: &Rc<Replica>, reason: &'static str) {
    let dropped = {
        let mut o = rep.own.borrow_mut();
        o.lease = None;
        std::mem::take(&mut o.owned)
    };
    rep.h.shard_tracker.release_all(sim, &rep.pod);
    if !dropped.is_empty() {
        sim.record(
            "lcm",
            format!(
                "{} lost its lease ({reason}); released shards {dropped:?}",
                rep.pod
            ),
        );
    }
    for _ in &dropped {
        sim.metrics()
            .inc(crate::metrics::LCM_SHARD_LOSSES, &[("reason", reason)]);
    }
}

/// Races a CAS (expect-absent, value = pod, attached to our lease) for
/// one shard's owner key. Losing is normal — someone else won, or etcd
/// is down — and the reconcile backstop retries.
fn try_acquire(sim: &mut Sim, rep: &Rc<Replica>, shard: u32, trigger: &'static str) {
    if shard >= rep.h.config.lcm_shards || rep.own.borrow().owned.contains(&shard) {
        return;
    }
    if !lease_valid(rep, sim.now()) {
        return;
    }
    let Some(lease) = rep.own.borrow().lease else {
        return;
    };
    let rep2 = rep.clone();
    rep.etcdc.cas_with_lease(
        sim,
        paths::lcm_shard_owner(shard),
        None,
        Some(rep.pod.clone()),
        Some(lease),
        move |sim, r| {
            if !rep2.alive.get() || !matches!(r, Ok(true)) {
                return;
            }
            let claimed = {
                let mut o = rep2.own.borrow_mut();
                // The CAS won under `lease`; adopt the shard only if that
                // lease is still the one we live on and the fence holds.
                // A stale win's key simply dies with the old lease.
                o.lease == Some(lease) && sim.now() < o.fence && o.owned.insert(shard)
            };
            if claimed {
                rep2.h.shard_tracker.claim(sim, shard, &rep2.pod);
                sim.record(
                    "lcm",
                    format!("{} acquired shard {shard} ({trigger})", rep2.pod),
                );
                sim.metrics().inc(
                    crate::metrics::LCM_SHARD_ACQUISITIONS,
                    &[("trigger", trigger)],
                );
            }
        },
    );
}

/// Periodic backstop: lists the owner keys and races for any unowned
/// shard. Also the *initial* acquisition pass (the watch is registered
/// before the first call, so nothing can slip between list and watch).
fn reconcile(sim: &mut Sim, rep: &Rc<Replica>) {
    if !lease_valid(rep, sim.now()) {
        return;
    }
    let rep2 = rep.clone();
    rep.etcdc
        .get_prefix(sim, paths::LCM_SHARDS_PREFIX, move |sim, r| {
            if !rep2.alive.get() {
                return;
            }
            // etcd unreachable: reconcile is itself the retry loop — it
            // re-runs every scan tick, so a missed pass only delays
            // shard acquisition by one period.
            let Ok(pairs) = r else {
                return;
            };
            let listed: BTreeMap<String, String> = pairs.into_iter().collect();
            for shard in 0..rep2.h.config.lcm_shards {
                let key = paths::lcm_shard_owner(shard);
                let owned = rep2.own.borrow().owned.contains(&shard);
                match listed.get(&key) {
                    None if !owned => try_acquire(sim, &rep2, shard, "reconcile"),
                    // Owned but absent from the listing: while our fence
                    // holds, our lease cannot have been revoked (the
                    // guarded revoke fires only past the server deadline,
                    // which is ≥ the fence) and nothing else deletes
                    // owner keys — so the listing is just stale against
                    // an acquisition that landed after its snapshot.
                    None => {}
                    Some(v) if owned && *v != rep2.pod => {
                        // Cannot happen while the fence holds (same
                        // argument as above); defensive backstop so an
                        // unforeseen displacement degrades to a released
                        // shard, never a double drive.
                        rep2.own.borrow_mut().owned.remove(&shard);
                        rep2.h.shard_tracker.release(sim, shard, &rep2.pod);
                        sim.metrics()
                            .inc(crate::metrics::LCM_SHARD_LOSSES, &[("reason", "displaced")]);
                    }
                    // Held by someone else — or by a previous incarnation
                    // of this very pod (same value, but not in `owned`):
                    // that key is attached to the dead incarnation's
                    // lease and will expire; never adopt it.
                    Some(_) => {}
                }
            }
        });
}

/// Creates the Guardian K8s Job for `job` if it does not already exist
/// (idempotent — safe under API retries and scan races).
pub(crate) fn ensure_guardian(sim: &mut Sim, h: &Handles, job: &JobId) {
    let name = paths::guardian_job(job);
    if h.kube.job_status(&name).is_some() {
        return;
    }
    sim.record("lcm", format!("creating guardian for {job}"));
    sim.metrics()
        .inc(crate::metrics::LCM_GUARDIANS_CREATED, &[]);
    let pod = PodSpec::new(
        "unused",
        ContainerSpec::new(
            "guardian",
            ImageRef::microservice("dlaas/guardian"),
            "guardian",
        )
        .with_arg(job.as_str())
        .with_cold_start(h.config.guardian_cold_start),
    )
    .with_labels(labels! {
        "role" => "core",
        "app" => "guardian",
        "job" => job.as_str(),
    })
    .with_resources(Resources::new(250, 256, 0), None);
    h.kube
        .create_job(sim, &name, h.config.guardian_backoff_limit, pod);
}

/// Deletes every cluster resource belonging to `job`: the learner
/// StatefulSet, the helper Deployment, the network policy, the NFS volume
/// and the job's etcd keys; optionally the Guardian K8s Job itself.
/// Results and logs in the object store are deliberately kept.
pub(crate) fn teardown_job(sim: &mut Sim, h: &Handles, job: &JobId, delete_guardian: bool) {
    sim.record("lcm", format!("tearing down resources of {job}"));
    sim.metrics().inc(crate::metrics::LCM_TEARDOWNS, &[]);
    h.kube.delete_statefulset(sim, &paths::learner_set(job));
    h.kube
        .delete_deployment(sim, &paths::helper_deployment(job));
    h.kube.remove_network_policy(&paths::network_policy(job));
    if delete_guardian {
        h.kube.delete_job(sim, &paths::guardian_job(job));
    }
    h.nfs.delete_volume_named(&paths::volume(job));
    // Shared GC handle: a fresh client per call would register one
    // watch-net endpoint per job and never unregister it (see Handles).
    h.etcd_gc
        .delete_prefix(sim, paths::etcd_job_prefix(job), |_sim, _r| {});
}

/// When the job most recently entered DEPLOYING, per its status history.
/// A negative `t_us` is a malformed (platform-written) record: `None`,
/// never a silent wrap to a far-future time that would mask deploy-stuck
/// detection (or trip it spuriously).
fn deploying_since(doc: &Value) -> Option<SimTime> {
    let history = doc.path("history")?.as_arr()?;
    history
        .iter()
        .rev()
        .find(|e| e.path("status").and_then(Value::as_str) == Some("DEPLOYING"))
        .and_then(|e| e.path("t_us"))
        .and_then(Value::as_i64)
        .and_then(|us| u64::try_from(us).ok())
        .map(SimTime::from_micros)
}

/// The scan's watchlists, keyed off the metadata store's change feed.
///
/// Everything here is a cache of the jobs collection: a fresh incarnation
/// (watermark 0) rebuilds it from the full feed, so losing it in an LCM
/// crash costs one wide scan, never correctness.
#[derive(Debug, Default)]
struct ScanState {
    /// Change-feed sequence number the next scan resumes from.
    watermark: u64,
    /// PENDING jobs and when they were admitted (redeploy backstop).
    pending: BTreeMap<JobId, SimTime>,
    /// DEPLOYING jobs and when they entered that state (deploy timeout).
    deploying: BTreeMap<JobId, SimTime>,
    /// All non-terminal admitted jobs (Guardian gave-up watch).
    active: BTreeSet<JobId>,
    /// Terminal jobs not yet confirmed free of cluster leftovers.
    terminal_gc: BTreeSet<JobId>,
    /// QUEUED jobs awaiting fair-queue admission.
    queued: BTreeMap<JobId, QueuedInfo>,
    /// GPU demand of admitted, non-terminal jobs (tenant, gpus) — the
    /// arbiter's usage view, folded to per-tenant sums each round.
    usage: BTreeMap<JobId, (String, u32)>,
    /// Tenants-collection change-feed watermark.
    tenants_watermark: u64,
    /// The tenant registry (quotas + fair-share weights), fed by the
    /// tenants collection's change feed.
    tenants: BTreeMap<String, TenantShare>,
    /// Tenants whose queue-depth gauge this replica last set (so a
    /// drained tenant's gauge drops back to 0 instead of going stale).
    gauged: BTreeSet<String>,
}

/// The arbiter's view of one QUEUED job.
#[derive(Debug)]
struct QueuedInfo {
    tenant: String,
    gpus: u32,
    since_us: u64,
}

/// Records an admitted non-terminal job's GPU demand in the arbiter's
/// usage view (skipped when the document has no tenant — such a document
/// is malformed, but quota math degrading to "uncounted" is the safe
/// direction: the invariant checker still sees it).
fn track_usage(st: &mut ScanState, job: &JobId, doc: &Value) {
    if let Some(tenant) = doc.path("tenant").and_then(Value::as_str) {
        st.usage
            .insert(job.clone(), (tenant.to_owned(), crate::api::doc_gpus(doc)));
    }
}

/// Folds one changed job document into the watchlists.
fn ingest(sim: &mut Sim, st: &mut ScanState, doc: &Value) {
    let Some(id) = doc.path("_id").and_then(Value::as_str) else {
        return;
    };
    let job = JobId::new(id);
    st.pending.remove(&job);
    st.deploying.remove(&job);
    st.active.remove(&job);
    st.terminal_gc.remove(&job);
    st.queued.remove(&job);
    st.usage.remove(&job);
    let status: Option<JobStatus> = doc
        .path("status")
        .and_then(Value::as_str)
        .and_then(|s| s.parse().ok());
    match status {
        Some(JobStatus::Queued) => {
            let tenant = doc.path("tenant").and_then(Value::as_str);
            let since = doc
                .path("submitted_us")
                .and_then(Value::as_i64)
                .and_then(|us| u64::try_from(us).ok());
            match (tenant, since) {
                (Some(tenant), Some(since_us)) => {
                    st.queued.insert(
                        job,
                        QueuedInfo {
                            tenant: tenant.to_owned(),
                            gpus: crate::api::doc_gpus(doc),
                            since_us,
                        },
                    );
                }
                // Missing tenant / negative timestamp is store
                // corruption: keep the job off the admission queue like
                // the other malformed-record paths.
                _ => {
                    sim.metrics().inc(
                        crate::metrics::LCM_MALFORMED_RECORDS,
                        &[("field", "queued")],
                    );
                }
            }
        }
        Some(JobStatus::Pending) => {
            st.active.insert(job.clone());
            track_usage(st, &job, doc);
            // Age from `admitted_us` (fair-queue admission stamps it; for
            // directly admitted jobs it equals `submitted_us`, which
            // remains the fallback for pre-fairness documents). A
            // negative stamp is store corruption: leave the job off the
            // redeploy watchlist instead of wrapping it to a huge
            // timestamp (which would pin the job's age at zero and
            // strand it forever).
            let field = if doc.path("admitted_us").is_some() {
                "admitted_us"
            } else {
                "submitted_us"
            };
            match u64::try_from(doc.path(field).and_then(Value::as_i64).unwrap_or(0)) {
                Ok(admitted) => {
                    st.pending.insert(job, SimTime::from_micros(admitted));
                }
                Err(_) => {
                    sim.metrics()
                        .inc(crate::metrics::LCM_MALFORMED_RECORDS, &[("field", field)]);
                }
            }
        }
        Some(JobStatus::Deploying) => {
            st.active.insert(job.clone());
            track_usage(st, &job, doc);
            if let Some(since) = deploying_since(doc) {
                st.deploying.insert(job, since);
            }
        }
        Some(JobStatus::Processing | JobStatus::Storing) => {
            st.active.insert(job.clone());
            track_usage(st, &job, doc);
        }
        Some(JobStatus::Completed | JobStatus::Failed | JobStatus::Killed) => {
            st.terminal_gc.insert(job);
        }
        // Unparseable status: watch nothing; the document re-enters the
        // feed if it is ever repaired.
        None => {}
    }
}

fn scan(
    sim: &mut Sim,
    h: &Handles,
    meta: &MetaClient,
    state: &Rc<RefCell<ScanState>>,
    rep: &Rc<Replica>,
) {
    let since = state.borrow().watermark;
    let h2 = h.clone();
    let meta2 = meta.clone();
    let state2 = state.clone();
    let rep2 = rep.clone();
    meta.find_changed(sim, JOBS, since, move |sim, r| {
        // Store unreachable: keep the old watermark and retry next tick.
        let Ok((docs, gone, high_water)) = r else {
            return;
        };
        {
            let mut st = state2.borrow_mut();
            st.watermark = high_water;
            for doc in &docs {
                ingest(sim, &mut st, doc);
            }
            for job in gone.iter().map(JobId::new) {
                st.pending.remove(&job);
                st.deploying.remove(&job);
                st.active.remove(&job);
                st.terminal_gc.remove(&job);
                st.queued.remove(&job);
                st.usage.remove(&job);
            }
        }
        // Pull the tenants feed too (quota/weight edits are rare, so
        // this is almost always an empty delta), then sweep and run the
        // admission arbiter on the fresh view.
        let tenants_since = state2.borrow().tenants_watermark;
        let h3 = h2.clone();
        let meta3 = meta2.clone();
        let state3 = state2.clone();
        let rep3 = rep2.clone();
        meta2.find_changed(sim, TENANTS, tenants_since, move |sim, r| {
            if let Ok((docs, gone, high_water)) = r {
                let mut st = state3.borrow_mut();
                st.tenants_watermark = high_water;
                for doc in &docs {
                    if let Some(t) = Tenant::from_document(doc) {
                        st.tenants.insert(
                            t.id,
                            TenantShare {
                                max_gpus: t.max_gpus,
                                weight: t.weight,
                            },
                        );
                    }
                }
                for id in &gone {
                    st.tenants.remove(id);
                }
            }
            // Tenants feed unreachable: sweep with the cached registry.
            sweep(sim, &h3, &meta3, &state3, &rep3);
            admit(sim, &h3, &meta3, &state3, &rep3);
        });
    });
}

/// The fair-queue admission arbiter: runs only on the replica currently
/// owning [`ARBITER_SHARD`], computes the pure [`admission_plan`] over
/// the watchlists, and applies it with CAS-guarded QUEUED → PENDING
/// updates. Admissions are deliberately NOT reported as sweep drives:
/// the admitted job's shard may belong to another replica, and the
/// ledger's at-most-one-owner check is about lifecycle sweeps — the
/// admission write itself is single-winner by the status CAS, and
/// [`ensure_guardian`] is idempotent under races with the owner's own
/// pending sweep.
fn admit(
    sim: &mut Sim,
    h: &Handles,
    meta: &MetaClient,
    state: &Rc<RefCell<ScanState>>,
    rep: &Rc<Replica>,
) {
    if !lease_valid(rep, sim.now()) || !rep.own.borrow().owned.contains(&ARBITER_SHARD) {
        return;
    }

    // Queue-depth gauges (single writer: this arbiter). Tenants whose
    // queue drained since the last round are reset to 0.
    let (tenants, usage, queued) = {
        let mut st = state.borrow_mut();
        let mut depths: BTreeMap<String, f64> = BTreeMap::new();
        for info in st.queued.values() {
            *depths.entry(info.tenant.clone()).or_insert(0.0) += 1.0;
        }
        for tenant in &st.gauged {
            if !depths.contains_key(tenant) {
                sim.metrics().set_gauge(
                    crate::metrics::TENANT_QUEUE_DEPTH,
                    &[("tenant", tenant)],
                    0.0,
                );
            }
        }
        for (tenant, depth) in &depths {
            sim.metrics().set_gauge(
                crate::metrics::TENANT_QUEUE_DEPTH,
                &[("tenant", tenant)],
                *depth,
            );
        }
        st.gauged = depths.keys().cloned().collect();

        let mut usage: BTreeMap<String, u32> = BTreeMap::new();
        for (tenant, gpus) in st.usage.values() {
            *usage.entry(tenant.clone()).or_insert(0) += gpus;
        }
        let queued: Vec<QueuedJob> = st
            .queued
            .iter()
            .map(|(job, i)| QueuedJob {
                job: job.clone(),
                tenant: i.tenant.clone(),
                gpus: i.gpus,
                since_us: i.since_us,
            })
            .collect();
        (st.tenants.clone(), usage, queued)
    };
    if queued.is_empty() {
        return;
    }

    for job in admission_plan(&tenants, &usage, &queued) {
        let Some(q) = queued.iter().find(|q| q.job == job) else {
            continue;
        };
        let tenant = q.tenant.clone();
        let since_us = q.since_us;
        let h2 = h.clone();
        let job = job.clone();
        // The local queued entry is left in place: on success the status
        // change re-enters through the jobs feed before the next round
        // (moving the job to the pending/usage lists), and on a lost CAS
        // race or store error the entry must survive for a retry anyway.
        meta.admit_job(sim, &job.clone(), move |sim, r| {
            if !matches!(r, Ok(true)) {
                return;
            }
            let waited = sim.now().as_micros().saturating_sub(since_us);
            sim.metrics().observe(
                crate::metrics::TENANT_ADMISSION_WAIT,
                &[("tenant", &tenant)],
                waited as f64,
            );
            sim.record(
                "lcm",
                format!("arbiter admitted {job} (tenant {tenant}, waited {waited}us)"),
            );
            ensure_guardian(sim, &h2, &job);
        });
    }
}

/// Records a sweep drive against `job` in the ownership ledger right
/// before acting on it — the probe the at-most-one-owner invariant sees.
fn note_sweep(sim: &Sim, rep: &Replica, job: &JobId) {
    let shard = paths::job_shard(job, rep.h.config.lcm_shards);
    rep.h
        .shard_tracker
        .note_sweep(sim, shard, job.as_str(), &rep.pod);
}

/// Walks the watchlists (not the whole collection) and applies the three
/// self-healing rules — to owned shards only. Every replica ingests the
/// full feed, but a job is swept exclusively by the current owner of its
/// shard; each drive is reported to the ownership ledger first.
fn sweep(
    sim: &mut Sim,
    h: &Handles,
    meta: &MetaClient,
    state: &Rc<RefCell<ScanState>>,
    rep: &Rc<Replica>,
) {
    // 1. Re-deploy PENDING jobs that have sat too long without a Guardian.
    let redeploy_after = h.config.pending_redeploy_after;
    let pending: Vec<(JobId, SimTime)> = state
        .borrow()
        .pending
        .iter()
        .map(|(j, t)| (j.clone(), *t))
        .collect();
    for (job, submitted) in pending {
        if !owns_job(rep, sim.now(), &job) {
            continue;
        }
        let age = sim.now().saturating_duration_since(submitted);
        if age >= redeploy_after && h.kube.job_status(&paths::guardian_job(&job)).is_none() {
            note_sweep(sim, rep, &job);
            sim.record("lcm", format!("scan: re-deploying stranded job {job}"));
            sim.metrics().inc(crate::metrics::LCM_SCAN_REDEPLOYS, &[]);
            ensure_guardian(sim, h, &job);
        }
    }

    // 2. Fail jobs whose Guardian exhausted its K8s backoff limit, and
    //    jobs stuck in DEPLOYING past the deploy timeout (undeployable:
    //    e.g. they request hardware the cluster does not have). Both
    //    checks read local Kubernetes/watchlist state only.
    let deploy_timeout = h.config.deploy_timeout;
    let mut to_fail: Vec<(JobId, bool)> = Vec::new();
    {
        let st = state.borrow();
        for job in &st.active {
            if !owns_job(rep, sim.now(), job) {
                continue;
            }
            let guardian_gave_up =
                h.kube.job_status(&paths::guardian_job(job)) == Some(KubeJobStatus::Failed);
            let deploy_stuck = st
                .deploying
                .get(job)
                .is_some_and(|since| sim.now().saturating_duration_since(*since) >= deploy_timeout);
            if guardian_gave_up || deploy_stuck {
                to_fail.push((job.clone(), guardian_gave_up));
            }
        }
    }
    for (job, guardian_gave_up) in to_fail {
        let reason = if guardian_gave_up {
            "guardian gave up"
        } else {
            "deploy timeout (resources unschedulable?)"
        };
        note_sweep(sim, rep, &job);
        sim.record("lcm", format!("scan: failing {job}: {reason}"));
        let reason_label = if guardian_gave_up {
            "guardian_gave_up"
        } else {
            "deploy_timeout"
        };
        sim.metrics().inc(
            crate::metrics::LCM_SCAN_FAILURES,
            &[("reason", reason_label)],
        );
        // Drop the job from the live watchlists now so a slow status
        // write cannot double-fail it next tick; the terminal status
        // change re-enters it through the feed as a GC candidate.
        {
            let mut st = state.borrow_mut();
            st.pending.remove(&job);
            st.deploying.remove(&job);
            st.active.remove(&job);
        }
        let h4 = h.clone();
        let job2 = job.clone();
        meta.advance_status(sim, &job, JobStatus::Failed, move |sim, _r| {
            teardown_job(sim, &h4, &job2, true);
        });
    }

    // 3. Garbage-collect leftovers of terminal jobs. A job leaves the
    //    watchlist only once its pods and volume are gone AND an etcd
    //    probe confirms no leaked keys (a teardown that ran during an
    //    etcd outage may have lost its delete_prefix; nothing else ever
    //    looks at those keys again).
    let terminal: Vec<JobId> = state.borrow().terminal_gc.iter().cloned().collect();
    for job in terminal {
        if !owns_job(rep, sim.now(), &job) {
            continue;
        }
        let has_pods = !h
            .kube
            .pods_matching(&labels! {"job" => job.as_str()})
            .is_empty();
        let has_volume = h.nfs.find_volume(&paths::volume(&job)).is_some();
        if has_pods || has_volume {
            note_sweep(sim, rep, &job);
            sim.record("lcm", format!("scan: GC leftovers of terminal job {job}"));
            sim.metrics().inc(crate::metrics::LCM_SCAN_GC, &[]);
            teardown_job(sim, h, &job, true);
        } else {
            let h6 = h.clone();
            let state3 = state.clone();
            let rep3 = rep.clone();
            let prefix = paths::etcd_job_prefix(&job);
            let prefix2 = prefix.clone();
            h.etcd_gc.get_prefix(sim, prefix, move |sim, r| {
                match r {
                    Ok(pairs) if !pairs.is_empty() => {
                        note_sweep(sim, &rep3, &job);
                        sim.record("lcm", format!("scan: GC etcd keys of {job}"));
                        sim.metrics().inc(crate::metrics::LCM_SCAN_GC, &[]);
                        h6.etcd_gc.delete_prefix(sim, prefix2, |_sim, _r| {});
                        // Keep watching: next tick re-probes until clean.
                    }
                    Ok(_) => {
                        // Confirmed clean: stop watching this job.
                        state3.borrow_mut().terminal_gc.remove(&job);
                    }
                    // etcd unreachable: keep watching and retry next tick.
                    // dlaas-lint: allow(swallowed-error): the job stays in terminal_gc, so the next LCM sweep tick re-probes this prefix — the retry IS the handling, and a metric here would double-count etcd's own error counters
                    Err(_) => {}
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlaas_docstore::obj;

    #[test]
    fn deploying_since_finds_latest_entry() {
        let doc = obj! {
            "_id" => "j",
            "history" => vec![
                obj! {"status" => "PENDING", "t_us" => 10},
                obj! {"status" => "DEPLOYING", "t_us" => 20},
                obj! {"status" => "DEPLOYING", "t_us" => 50},
            ],
        };
        assert_eq!(deploying_since(&doc), Some(SimTime::from_micros(50)));
    }

    #[test]
    fn deploying_since_absent_when_never_deployed() {
        let doc = obj! {
            "_id" => "j",
            "history" => vec![obj! {"status" => "PENDING", "t_us" => 10}],
        };
        assert_eq!(deploying_since(&doc), None);
        assert_eq!(deploying_since(&obj! {"_id" => "j"}), None);
        assert_eq!(deploying_since(&Value::Null), None);
    }

    #[test]
    fn deploying_since_rejects_negative_timestamp() {
        // Regression: `t_us as i64 as u64` used to wrap -1 to u64::MAX,
        // a far-future time that made every DEPLOYING job look fresh.
        let doc = obj! {
            "_id" => "j",
            "history" => vec![obj! {"status" => "DEPLOYING", "t_us" => -1}],
        };
        assert_eq!(deploying_since(&doc), None);
        // A later well-formed entry still wins over an earlier corrupt one.
        let doc = obj! {
            "_id" => "j",
            "history" => vec![
                obj! {"status" => "DEPLOYING", "t_us" => -5},
                obj! {"status" => "DEPLOYING", "t_us" => 40},
            ],
        };
        assert_eq!(deploying_since(&doc), Some(SimTime::from_micros(40)));
    }

    #[test]
    fn ingest_routes_jobs_to_the_right_watchlists() {
        let mut sim = Sim::new(0);
        let mut st = ScanState::default();
        ingest(
            &mut sim,
            &mut st,
            &obj! {"_id" => "p", "status" => "PENDING", "submitted_us" => 42},
        );
        ingest(
            &mut sim,
            &mut st,
            &obj! {
                "_id" => "d",
                "status" => "DEPLOYING",
                "history" => vec![obj! {"status" => "DEPLOYING", "t_us" => 7}],
            },
        );
        ingest(
            &mut sim,
            &mut st,
            &obj! {"_id" => "r", "status" => "PROCESSING"},
        );
        ingest(
            &mut sim,
            &mut st,
            &obj! {"_id" => "t", "status" => "COMPLETED"},
        );

        assert_eq!(
            st.pending.get(&JobId::new("p")),
            Some(&SimTime::from_micros(42))
        );
        assert_eq!(
            st.deploying.get(&JobId::new("d")),
            Some(&SimTime::from_micros(7))
        );
        assert_eq!(
            st.active.len(),
            3,
            "pending+deploying+processing are active"
        );
        assert!(st.terminal_gc.contains(&JobId::new("t")));
        assert!(!st.active.contains(&JobId::new("t")));

        // A status transition moves the job between lists instead of
        // leaving a stale entry behind.
        ingest(
            &mut sim,
            &mut st,
            &obj! {"_id" => "p", "status" => "FAILED"},
        );
        assert!(st.pending.is_empty());
        assert!(!st.active.contains(&JobId::new("p")));
        assert!(st.terminal_gc.contains(&JobId::new("p")));
    }

    #[test]
    fn ingest_prefers_admitted_us_for_pending_age() {
        // A fair-queue-admitted job's redeploy clock starts at admission,
        // not submission — otherwise a long queue wait alone would trip
        // the stranded-job redeploy (and the liveness invariant).
        let mut sim = Sim::new(0);
        let mut st = ScanState::default();
        ingest(
            &mut sim,
            &mut st,
            &obj! {"_id" => "p", "status" => "PENDING",
            "submitted_us" => 42, "admitted_us" => 9000},
        );
        assert_eq!(
            st.pending.get(&JobId::new("p")),
            Some(&SimTime::from_micros(9000))
        );
    }

    #[test]
    fn ingest_routes_queued_jobs_to_the_admission_queue() {
        let mut sim = Sim::new(0);
        let mut st = ScanState::default();
        ingest(
            &mut sim,
            &mut st,
            &obj! {"_id" => "q", "status" => "QUEUED", "tenant" => "acme",
            "gpus" => 4, "submitted_us" => 100},
        );
        let info = st.queued.get(&JobId::new("q")).unwrap();
        assert_eq!(
            (info.tenant.as_str(), info.gpus, info.since_us),
            ("acme", 4, 100)
        );
        assert!(
            !st.active.contains(&JobId::new("q")),
            "queued is not active"
        );
        assert!(st.usage.is_empty(), "queued jobs hold no quota");

        // Admission moves it to the pending + usage views.
        ingest(
            &mut sim,
            &mut st,
            &obj! {"_id" => "q", "status" => "PENDING", "tenant" => "acme",
            "gpus" => 4, "submitted_us" => 100, "admitted_us" => 500},
        );
        assert!(st.queued.is_empty());
        assert_eq!(
            st.usage.get(&JobId::new("q")),
            Some(&("acme".to_owned(), 4))
        );

        // A queued document missing its tenant is malformed: skipped.
        ingest(
            &mut sim,
            &mut st,
            &obj! {"_id" => "bad", "status" => "QUEUED", "submitted_us" => 1},
        );
        assert!(st.queued.is_empty());
    }

    #[test]
    fn ingest_keeps_corrupt_submitted_us_off_the_redeploy_list() {
        let mut sim = Sim::new(0);
        let mut st = ScanState::default();
        ingest(
            &mut sim,
            &mut st,
            &obj! {"_id" => "bad", "status" => "PENDING", "submitted_us" => -5},
        );
        // Still watched for a failed Guardian, but never age-computed
        // from a wrapped timestamp.
        assert!(st.pending.is_empty());
        assert!(st.active.contains(&JobId::new("bad")));
    }
}
