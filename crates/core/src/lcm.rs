//! The Lifecycle Manager (LCM).
//!
//! "The LCM is responsible for the job from submission to
//! completion/failure, i.e., the deployment, monitoring, garbage
//! collection, and user-initiated termination of the job. […] To deploy a
//! DL job, the LCM simply instantiates a component called the Guardian
//! with all the metadata of the DL job [as] a K8S Job." (§III-c, §III-d)
//!
//! The LCM is stateless: the metadata store is the source of truth. Its
//! periodic scan is the dependability backstop that makes the platform
//! self-healing across its own crashes:
//!
//! * accepted jobs whose `DeployJob` message was lost (e.g. the LCM died
//!   right after the API acknowledged) are picked up and deployed,
//! * jobs whose Guardian exhausted its K8s backoff limit are failed,
//! * terminal jobs with leftover cluster resources are garbage-collected.
//!
//! The scan is watch-driven: each tick pulls the jobs collection's change
//! feed above a watermark (`FindChanged`) into in-memory watchlists and
//! sweeps only those, so per-tick work is proportional to what changed
//! plus what is actually being watched — not to the total number of jobs
//! ever submitted. The watchlists are a cache, not state: an LCM restart
//! begins at watermark 0, which replays the full feed and rebuilds them,
//! preserving the statelessness the paper's recovery story relies on.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use dlaas_docstore::Value;
use dlaas_kube::{
    labels, pod_addr, Cleanup, ContainerSpec, ImageRef, JobStatus as KubeJobStatus, PodSpec,
    ProcessCtx, Resources,
};
use dlaas_sim::{Sim, SimTime};

use crate::handles::Handles;
use crate::job::{JobId, JobStatus};
use crate::mongo::{MetaClient, JOBS};
use crate::paths;
use crate::proto::{CoreRequest, CoreResponse};

/// Behavior factory for the LCM container.
pub fn lcm_behavior(h: Handles, sim: &mut Sim, ctx: ProcessCtx) -> Cleanup {
    let addr = pod_addr(&ctx.pod);
    let meta = h.meta(&ctx.pod);
    ctx.record(sim, "LCM instance up");

    let h2 = h.clone();
    let ctx2 = ctx.clone();
    let meta2 = meta.clone();
    h.rpc.serve(addr.clone(), move |sim, req, responder| {
        if !ctx2.is_alive() {
            return;
        }
        match req {
            CoreRequest::DeployJob { job } => {
                ensure_guardian(sim, &h2, &job);
                responder.ok(sim, CoreResponse::Ok);
            }
            CoreRequest::StopJob { job } => {
                let h3 = h2.clone();
                let job2 = job.clone();
                meta2.advance_status(sim, &job, JobStatus::Killed, move |sim, r| match r {
                    Ok(_) => {
                        teardown_job(sim, &h3, &job2, true);
                        responder.ok(sim, CoreResponse::Ok);
                    }
                    Err(e) => responder.err(sim, e.to_string()),
                });
            }
            _ => responder.err(sim, "not an LCM endpoint"),
        }
    });

    // The background scan. The watchlist cache dies with this
    // incarnation; a successor starts at watermark 0 and rebuilds it
    // from the full change feed.
    let scan_period = h.config.lcm_scan;
    let h3 = h.clone();
    let meta3 = meta.clone();
    let alive = ctx.alive_flag();
    let state = Rc::new(RefCell::new(ScanState::default()));
    let timer = dlaas_sim::every(sim, scan_period, move |sim, _n| {
        if !alive.get() {
            return false;
        }
        scan(sim, &h3, &meta3, &state);
        true
    });

    let rpc = h.rpc.clone();
    Box::new(move |_sim| {
        timer.cancel();
        rpc.stop_serving(&addr);
    })
}

/// Creates the Guardian K8s Job for `job` if it does not already exist
/// (idempotent — safe under API retries and scan races).
pub(crate) fn ensure_guardian(sim: &mut Sim, h: &Handles, job: &JobId) {
    let name = paths::guardian_job(job);
    if h.kube.job_status(&name).is_some() {
        return;
    }
    sim.record("lcm", format!("creating guardian for {job}"));
    sim.metrics()
        .inc(crate::metrics::LCM_GUARDIANS_CREATED, &[]);
    let pod = PodSpec::new(
        "unused",
        ContainerSpec::new(
            "guardian",
            ImageRef::microservice("dlaas/guardian"),
            "guardian",
        )
        .with_arg(job.as_str())
        .with_cold_start(h.config.guardian_cold_start),
    )
    .with_labels(labels! {
        "role" => "core",
        "app" => "guardian",
        "job" => job.as_str(),
    })
    .with_resources(Resources::new(250, 256, 0), None);
    h.kube
        .create_job(sim, &name, h.config.guardian_backoff_limit, pod);
}

/// Deletes every cluster resource belonging to `job`: the learner
/// StatefulSet, the helper Deployment, the network policy, the NFS volume
/// and the job's etcd keys; optionally the Guardian K8s Job itself.
/// Results and logs in the object store are deliberately kept.
pub(crate) fn teardown_job(sim: &mut Sim, h: &Handles, job: &JobId, delete_guardian: bool) {
    sim.record("lcm", format!("tearing down resources of {job}"));
    sim.metrics().inc(crate::metrics::LCM_TEARDOWNS, &[]);
    h.kube.delete_statefulset(sim, &paths::learner_set(job));
    h.kube
        .delete_deployment(sim, &paths::helper_deployment(job));
    h.kube.remove_network_policy(&paths::network_policy(job));
    if delete_guardian {
        h.kube.delete_job(sim, &paths::guardian_job(job));
    }
    h.nfs.delete_volume_named(&paths::volume(job));
    // Shared GC handle: a fresh client per call would register one
    // watch-net endpoint per job and never unregister it (see Handles).
    h.etcd_gc
        .delete_prefix(sim, paths::etcd_job_prefix(job), |_sim, _r| {});
}

/// When the job most recently entered DEPLOYING, per its status history.
/// A negative `t_us` is a malformed (platform-written) record: `None`,
/// never a silent wrap to a far-future time that would mask deploy-stuck
/// detection (or trip it spuriously).
fn deploying_since(doc: &Value) -> Option<SimTime> {
    let history = doc.path("history")?.as_arr()?;
    history
        .iter()
        .rev()
        .find(|e| e.path("status").and_then(Value::as_str) == Some("DEPLOYING"))
        .and_then(|e| e.path("t_us"))
        .and_then(Value::as_i64)
        .and_then(|us| u64::try_from(us).ok())
        .map(SimTime::from_micros)
}

/// The scan's watchlists, keyed off the metadata store's change feed.
///
/// Everything here is a cache of the jobs collection: a fresh incarnation
/// (watermark 0) rebuilds it from the full feed, so losing it in an LCM
/// crash costs one wide scan, never correctness.
#[derive(Debug, Default)]
struct ScanState {
    /// Change-feed sequence number the next scan resumes from.
    watermark: u64,
    /// PENDING jobs and when they were submitted (redeploy backstop).
    pending: BTreeMap<JobId, SimTime>,
    /// DEPLOYING jobs and when they entered that state (deploy timeout).
    deploying: BTreeMap<JobId, SimTime>,
    /// All non-terminal jobs (Guardian gave-up watch).
    active: BTreeSet<JobId>,
    /// Terminal jobs not yet confirmed free of cluster leftovers.
    terminal_gc: BTreeSet<JobId>,
}

/// Folds one changed job document into the watchlists.
fn ingest(sim: &mut Sim, st: &mut ScanState, doc: &Value) {
    let Some(id) = doc.path("_id").and_then(Value::as_str) else {
        return;
    };
    let job = JobId::new(id);
    st.pending.remove(&job);
    st.deploying.remove(&job);
    st.active.remove(&job);
    st.terminal_gc.remove(&job);
    let status: Option<JobStatus> = doc
        .path("status")
        .and_then(Value::as_str)
        .and_then(|s| s.parse().ok());
    match status {
        Some(JobStatus::Pending) => {
            st.active.insert(job.clone());
            // A negative submitted_us is store corruption: leave the job
            // off the redeploy watchlist like the other malformed-record
            // paths instead of wrapping it to a huge timestamp (which
            // would pin the job's age at zero and strand it forever).
            match u64::try_from(
                doc.path("submitted_us")
                    .and_then(Value::as_i64)
                    .unwrap_or(0),
            ) {
                Ok(submitted) => {
                    st.pending.insert(job, SimTime::from_micros(submitted));
                }
                Err(_) => {
                    sim.metrics().inc(
                        crate::metrics::LCM_MALFORMED_RECORDS,
                        &[("field", "submitted_us")],
                    );
                }
            }
        }
        Some(JobStatus::Deploying) => {
            st.active.insert(job.clone());
            if let Some(since) = deploying_since(doc) {
                st.deploying.insert(job, since);
            }
        }
        Some(JobStatus::Processing | JobStatus::Storing) => {
            st.active.insert(job);
        }
        Some(JobStatus::Completed | JobStatus::Failed | JobStatus::Killed) => {
            st.terminal_gc.insert(job);
        }
        // Unparseable status: watch nothing; the document re-enters the
        // feed if it is ever repaired.
        None => {}
    }
}

fn scan(sim: &mut Sim, h: &Handles, meta: &MetaClient, state: &Rc<RefCell<ScanState>>) {
    let since = state.borrow().watermark;
    let h2 = h.clone();
    let meta2 = meta.clone();
    let state2 = state.clone();
    meta.find_changed(sim, JOBS, since, move |sim, r| {
        // Store unreachable: keep the old watermark and retry next tick.
        let Ok((docs, gone, high_water)) = r else {
            return;
        };
        {
            let mut st = state2.borrow_mut();
            st.watermark = high_water;
            for doc in &docs {
                ingest(sim, &mut st, doc);
            }
            for job in gone.iter().map(JobId::new) {
                st.pending.remove(&job);
                st.deploying.remove(&job);
                st.active.remove(&job);
                st.terminal_gc.remove(&job);
            }
        }
        sweep(sim, &h2, &meta2, &state2);
    });
}

/// Walks the watchlists (not the whole collection) and applies the three
/// self-healing rules.
fn sweep(sim: &mut Sim, h: &Handles, meta: &MetaClient, state: &Rc<RefCell<ScanState>>) {
    // 1. Re-deploy PENDING jobs that have sat too long without a Guardian.
    let redeploy_after = h.config.pending_redeploy_after;
    let pending: Vec<(JobId, SimTime)> = state
        .borrow()
        .pending
        .iter()
        .map(|(j, t)| (j.clone(), *t))
        .collect();
    for (job, submitted) in pending {
        let age = sim.now().saturating_duration_since(submitted);
        if age >= redeploy_after && h.kube.job_status(&paths::guardian_job(&job)).is_none() {
            sim.record("lcm", format!("scan: re-deploying stranded job {job}"));
            sim.metrics().inc(crate::metrics::LCM_SCAN_REDEPLOYS, &[]);
            ensure_guardian(sim, h, &job);
        }
    }

    // 2. Fail jobs whose Guardian exhausted its K8s backoff limit, and
    //    jobs stuck in DEPLOYING past the deploy timeout (undeployable:
    //    e.g. they request hardware the cluster does not have). Both
    //    checks read local Kubernetes/watchlist state only.
    let deploy_timeout = h.config.deploy_timeout;
    let mut to_fail: Vec<(JobId, bool)> = Vec::new();
    {
        let st = state.borrow();
        for job in &st.active {
            let guardian_gave_up =
                h.kube.job_status(&paths::guardian_job(job)) == Some(KubeJobStatus::Failed);
            let deploy_stuck = st
                .deploying
                .get(job)
                .is_some_and(|since| sim.now().saturating_duration_since(*since) >= deploy_timeout);
            if guardian_gave_up || deploy_stuck {
                to_fail.push((job.clone(), guardian_gave_up));
            }
        }
    }
    for (job, guardian_gave_up) in to_fail {
        let reason = if guardian_gave_up {
            "guardian gave up"
        } else {
            "deploy timeout (resources unschedulable?)"
        };
        sim.record("lcm", format!("scan: failing {job}: {reason}"));
        let reason_label = if guardian_gave_up {
            "guardian_gave_up"
        } else {
            "deploy_timeout"
        };
        sim.metrics().inc(
            crate::metrics::LCM_SCAN_FAILURES,
            &[("reason", reason_label)],
        );
        // Drop the job from the live watchlists now so a slow status
        // write cannot double-fail it next tick; the terminal status
        // change re-enters it through the feed as a GC candidate.
        {
            let mut st = state.borrow_mut();
            st.pending.remove(&job);
            st.deploying.remove(&job);
            st.active.remove(&job);
        }
        let h4 = h.clone();
        let job2 = job.clone();
        meta.advance_status(sim, &job, JobStatus::Failed, move |sim, _r| {
            teardown_job(sim, &h4, &job2, true);
        });
    }

    // 3. Garbage-collect leftovers of terminal jobs. A job leaves the
    //    watchlist only once its pods and volume are gone AND an etcd
    //    probe confirms no leaked keys (a teardown that ran during an
    //    etcd outage may have lost its delete_prefix; nothing else ever
    //    looks at those keys again).
    let terminal: Vec<JobId> = state.borrow().terminal_gc.iter().cloned().collect();
    for job in terminal {
        let has_pods = !h
            .kube
            .pods_matching(&labels! {"job" => job.as_str()})
            .is_empty();
        let has_volume = h.nfs.find_volume(&paths::volume(&job)).is_some();
        if has_pods || has_volume {
            sim.record("lcm", format!("scan: GC leftovers of terminal job {job}"));
            sim.metrics().inc(crate::metrics::LCM_SCAN_GC, &[]);
            teardown_job(sim, h, &job, true);
        } else {
            let h6 = h.clone();
            let state3 = state.clone();
            let prefix = paths::etcd_job_prefix(&job);
            let prefix2 = prefix.clone();
            h.etcd_gc.get_prefix(sim, prefix, move |sim, r| {
                match r {
                    Ok(pairs) if !pairs.is_empty() => {
                        sim.record("lcm", format!("scan: GC etcd keys of {job}"));
                        sim.metrics().inc(crate::metrics::LCM_SCAN_GC, &[]);
                        h6.etcd_gc.delete_prefix(sim, prefix2, |_sim, _r| {});
                        // Keep watching: next tick re-probes until clean.
                    }
                    Ok(_) => {
                        // Confirmed clean: stop watching this job.
                        state3.borrow_mut().terminal_gc.remove(&job);
                    }
                    // etcd unreachable: keep watching and retry next tick.
                    // dlaas-lint: allow(swallowed-error): the job stays in terminal_gc, so the next LCM sweep tick re-probes this prefix — the retry IS the handling, and a metric here would double-count etcd's own error counters
                    Err(_) => {}
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlaas_docstore::obj;

    #[test]
    fn deploying_since_finds_latest_entry() {
        let doc = obj! {
            "_id" => "j",
            "history" => vec![
                obj! {"status" => "PENDING", "t_us" => 10},
                obj! {"status" => "DEPLOYING", "t_us" => 20},
                obj! {"status" => "DEPLOYING", "t_us" => 50},
            ],
        };
        assert_eq!(deploying_since(&doc), Some(SimTime::from_micros(50)));
    }

    #[test]
    fn deploying_since_absent_when_never_deployed() {
        let doc = obj! {
            "_id" => "j",
            "history" => vec![obj! {"status" => "PENDING", "t_us" => 10}],
        };
        assert_eq!(deploying_since(&doc), None);
        assert_eq!(deploying_since(&obj! {"_id" => "j"}), None);
        assert_eq!(deploying_since(&Value::Null), None);
    }

    #[test]
    fn deploying_since_rejects_negative_timestamp() {
        // Regression: `t_us as i64 as u64` used to wrap -1 to u64::MAX,
        // a far-future time that made every DEPLOYING job look fresh.
        let doc = obj! {
            "_id" => "j",
            "history" => vec![obj! {"status" => "DEPLOYING", "t_us" => -1}],
        };
        assert_eq!(deploying_since(&doc), None);
        // A later well-formed entry still wins over an earlier corrupt one.
        let doc = obj! {
            "_id" => "j",
            "history" => vec![
                obj! {"status" => "DEPLOYING", "t_us" => -5},
                obj! {"status" => "DEPLOYING", "t_us" => 40},
            ],
        };
        assert_eq!(deploying_since(&doc), Some(SimTime::from_micros(40)));
    }

    #[test]
    fn ingest_routes_jobs_to_the_right_watchlists() {
        let mut sim = Sim::new(0);
        let mut st = ScanState::default();
        ingest(
            &mut sim,
            &mut st,
            &obj! {"_id" => "p", "status" => "PENDING", "submitted_us" => 42},
        );
        ingest(
            &mut sim,
            &mut st,
            &obj! {
                "_id" => "d",
                "status" => "DEPLOYING",
                "history" => vec![obj! {"status" => "DEPLOYING", "t_us" => 7}],
            },
        );
        ingest(
            &mut sim,
            &mut st,
            &obj! {"_id" => "r", "status" => "PROCESSING"},
        );
        ingest(
            &mut sim,
            &mut st,
            &obj! {"_id" => "t", "status" => "COMPLETED"},
        );

        assert_eq!(
            st.pending.get(&JobId::new("p")),
            Some(&SimTime::from_micros(42))
        );
        assert_eq!(
            st.deploying.get(&JobId::new("d")),
            Some(&SimTime::from_micros(7))
        );
        assert_eq!(
            st.active.len(),
            3,
            "pending+deploying+processing are active"
        );
        assert!(st.terminal_gc.contains(&JobId::new("t")));
        assert!(!st.active.contains(&JobId::new("t")));

        // A status transition moves the job between lists instead of
        // leaving a stale entry behind.
        ingest(
            &mut sim,
            &mut st,
            &obj! {"_id" => "p", "status" => "FAILED"},
        );
        assert!(st.pending.is_empty());
        assert!(!st.active.contains(&JobId::new("p")));
        assert!(st.terminal_gc.contains(&JobId::new("p")));
    }

    #[test]
    fn ingest_keeps_corrupt_submitted_us_off_the_redeploy_list() {
        let mut sim = Sim::new(0);
        let mut st = ScanState::default();
        ingest(
            &mut sim,
            &mut st,
            &obj! {"_id" => "bad", "status" => "PENDING", "submitted_us" => -5},
        );
        // Still watched for a failed Guardian, but never age-computed
        // from a wrapped timestamp.
        assert!(st.pending.is_empty());
        assert!(st.active.contains(&JobId::new("bad")));
    }
}
