//! The Lifecycle Manager (LCM).
//!
//! "The LCM is responsible for the job from submission to
//! completion/failure, i.e., the deployment, monitoring, garbage
//! collection, and user-initiated termination of the job. […] To deploy a
//! DL job, the LCM simply instantiates a component called the Guardian
//! with all the metadata of the DL job [as] a K8S Job." (§III-c, §III-d)
//!
//! The LCM is stateless: the metadata store is the source of truth. Its
//! periodic scan is the dependability backstop that makes the platform
//! self-healing across its own crashes:
//!
//! * accepted jobs whose `DeployJob` message was lost (e.g. the LCM died
//!   right after the API acknowledged) are picked up and deployed,
//! * jobs whose Guardian exhausted its K8s backoff limit are failed,
//! * terminal jobs with leftover cluster resources are garbage-collected.

use dlaas_docstore::{Filter, Value};
use dlaas_kube::{
    labels, pod_addr, Cleanup, ContainerSpec, ImageRef, JobStatus as KubeJobStatus, PodSpec,
    ProcessCtx, Resources,
};
use dlaas_sim::{Sim, SimTime};

use crate::handles::Handles;
use crate::job::{JobId, JobStatus};
use crate::mongo::{MetaClient, JOBS};
use crate::paths;
use crate::proto::{CoreRequest, CoreResponse};

/// Behavior factory for the LCM container.
pub fn lcm_behavior(h: Handles, sim: &mut Sim, ctx: ProcessCtx) -> Cleanup {
    let addr = pod_addr(&ctx.pod);
    let meta = h.meta(&ctx.pod);
    ctx.record(sim, "LCM instance up");

    let h2 = h.clone();
    let ctx2 = ctx.clone();
    let meta2 = meta.clone();
    h.rpc.serve(addr.clone(), move |sim, req, responder| {
        if !ctx2.is_alive() {
            return;
        }
        match req {
            CoreRequest::DeployJob { job } => {
                ensure_guardian(sim, &h2, &job);
                responder.ok(sim, CoreResponse::Ok);
            }
            CoreRequest::StopJob { job } => {
                let h3 = h2.clone();
                let job2 = job.clone();
                meta2.advance_status(sim, &job, JobStatus::Killed, move |sim, r| match r {
                    Ok(_) => {
                        teardown_job(sim, &h3, &job2, true);
                        responder.ok(sim, CoreResponse::Ok);
                    }
                    Err(e) => responder.err(sim, e.to_string()),
                });
            }
            _ => responder.err(sim, "not an LCM endpoint"),
        }
    });

    // The background scan.
    let scan_period = h.config.lcm_scan;
    let h3 = h.clone();
    let meta3 = meta.clone();
    let alive = ctx.alive_flag();
    let timer = dlaas_sim::every(sim, scan_period, move |sim, _n| {
        if !alive.get() {
            return false;
        }
        scan(sim, &h3, &meta3);
        true
    });

    let rpc = h.rpc.clone();
    Box::new(move |_sim| {
        timer.cancel();
        rpc.stop_serving(&addr);
    })
}

/// Creates the Guardian K8s Job for `job` if it does not already exist
/// (idempotent — safe under API retries and scan races).
pub(crate) fn ensure_guardian(sim: &mut Sim, h: &Handles, job: &JobId) {
    let name = paths::guardian_job(job);
    if h.kube.job_status(&name).is_some() {
        return;
    }
    sim.record("lcm", format!("creating guardian for {job}"));
    sim.metrics()
        .inc(crate::metrics::LCM_GUARDIANS_CREATED, &[]);
    let pod = PodSpec::new(
        "unused",
        ContainerSpec::new(
            "guardian",
            ImageRef::microservice("dlaas/guardian"),
            "guardian",
        )
        .with_arg(job.as_str())
        .with_cold_start(h.config.guardian_cold_start),
    )
    .with_labels(labels! {
        "role" => "core",
        "app" => "guardian",
        "job" => job.as_str(),
    })
    .with_resources(Resources::new(250, 256, 0), None);
    h.kube
        .create_job(sim, &name, h.config.guardian_backoff_limit, pod);
}

/// Deletes every cluster resource belonging to `job`: the learner
/// StatefulSet, the helper Deployment, the network policy, the NFS volume
/// and the job's etcd keys; optionally the Guardian K8s Job itself.
/// Results and logs in the object store are deliberately kept.
pub(crate) fn teardown_job(sim: &mut Sim, h: &Handles, job: &JobId, delete_guardian: bool) {
    sim.record("lcm", format!("tearing down resources of {job}"));
    sim.metrics().inc(crate::metrics::LCM_TEARDOWNS, &[]);
    h.kube.delete_statefulset(sim, &paths::learner_set(job));
    h.kube
        .delete_deployment(sim, &paths::helper_deployment(job));
    h.kube.remove_network_policy(&paths::network_policy(job));
    if delete_guardian {
        h.kube.delete_job(sim, &paths::guardian_job(job));
    }
    h.nfs.delete_volume_named(&paths::volume(job));
    // Shared GC handle: a fresh client per call would register one
    // watch-net endpoint per job and never unregister it (see Handles).
    h.etcd_gc
        .delete_prefix(sim, paths::etcd_job_prefix(job), |_sim, _r| {});
}

fn job_ids(docs: &[Value]) -> Vec<JobId> {
    docs.iter()
        .filter_map(|d| d.path("_id").and_then(Value::as_str))
        .map(JobId::new)
        .collect()
}

/// When the job most recently entered DEPLOYING, per its status history.
/// A negative `t_us` is a malformed (platform-written) record: `None`,
/// never a silent wrap to a far-future time that would mask deploy-stuck
/// detection (or trip it spuriously).
fn deploying_since(doc: &Value) -> Option<SimTime> {
    let history = doc.path("history")?.as_arr()?;
    history
        .iter()
        .rev()
        .find(|e| e.path("status").and_then(Value::as_str) == Some("DEPLOYING"))
        .and_then(|e| e.path("t_us"))
        .and_then(Value::as_i64)
        .and_then(|us| u64::try_from(us).ok())
        .map(SimTime::from_micros)
}

fn scan(sim: &mut Sim, h: &Handles, meta: &MetaClient) {
    // 1. Re-deploy PENDING jobs that have sat too long without a Guardian.
    let h2 = h.clone();
    let redeploy_after = h.config.pending_redeploy_after;
    meta.find(
        sim,
        JOBS,
        Filter::eq("status", JobStatus::Pending.to_string()),
        move |sim, r| {
            let Ok(docs) = r else { return };
            for doc in &docs {
                // A negative submitted_us is store corruption: skip the
                // document like the other malformed-record paths instead
                // of wrapping it to a huge timestamp (which would pin the
                // job's age at zero and strand it forever).
                let Ok(submitted) = u64::try_from(
                    doc.path("submitted_us")
                        .and_then(Value::as_i64)
                        .unwrap_or(0),
                ) else {
                    sim.metrics().inc(
                        crate::metrics::LCM_MALFORMED_RECORDS,
                        &[("field", "submitted_us")],
                    );
                    continue;
                };
                let age = sim
                    .now()
                    .saturating_duration_since(SimTime::from_micros(submitted));
                let Some(id) = doc.path("_id").and_then(Value::as_str) else {
                    continue;
                };
                let job = JobId::new(id);
                if age >= redeploy_after && h2.kube.job_status(&paths::guardian_job(&job)).is_none()
                {
                    sim.record("lcm", format!("scan: re-deploying stranded job {job}"));
                    sim.metrics().inc(crate::metrics::LCM_SCAN_REDEPLOYS, &[]);
                    ensure_guardian(sim, &h2, &job);
                }
            }
        },
    );

    // 2. Fail jobs whose Guardian exhausted its K8s backoff limit, and
    //    jobs stuck in DEPLOYING past the deploy timeout (undeployable:
    //    e.g. they request hardware the cluster does not have).
    let h3 = h.clone();
    let meta2 = meta.clone();
    let deploy_timeout = h.config.deploy_timeout;
    let active: Vec<Value> = [
        JobStatus::Pending,
        JobStatus::Deploying,
        JobStatus::Processing,
        JobStatus::Storing,
    ]
    .iter()
    .map(|s| Value::from(s.to_string()))
    .collect();
    meta.find(
        sim,
        JOBS,
        Filter::In("status".into(), active),
        move |sim, r| {
            let Ok(docs) = r else { return };
            for doc in &docs {
                let Some(id) = doc.path("_id").and_then(Value::as_str) else {
                    continue;
                };
                let job = JobId::new(id);
                let guardian_gave_up =
                    h3.kube.job_status(&paths::guardian_job(&job)) == Some(KubeJobStatus::Failed);

                let status: Option<JobStatus> = doc
                    .path("status")
                    .and_then(Value::as_str)
                    .and_then(|s| s.parse().ok());
                let deploy_stuck = status == Some(JobStatus::Deploying)
                    && deploying_since(doc).is_some_and(|since| {
                        sim.now().saturating_duration_since(since) >= deploy_timeout
                    });

                if guardian_gave_up || deploy_stuck {
                    let reason = if guardian_gave_up {
                        "guardian gave up"
                    } else {
                        "deploy timeout (resources unschedulable?)"
                    };
                    sim.record("lcm", format!("scan: failing {job}: {reason}"));
                    let reason_label = if guardian_gave_up {
                        "guardian_gave_up"
                    } else {
                        "deploy_timeout"
                    };
                    sim.metrics().inc(
                        crate::metrics::LCM_SCAN_FAILURES,
                        &[("reason", reason_label)],
                    );
                    let h4 = h3.clone();
                    let job2 = job.clone();
                    meta2.advance_status(sim, &job, JobStatus::Failed, move |sim, _r| {
                        teardown_job(sim, &h4, &job2, true);
                    });
                }
            }
        },
    );

    // 3. Garbage-collect leftovers of terminal jobs.
    let h5 = h.clone();
    let terminal: Vec<Value> = [JobStatus::Completed, JobStatus::Failed, JobStatus::Killed]
        .iter()
        .map(|s| Value::from(s.to_string()))
        .collect();
    meta.find(
        sim,
        JOBS,
        Filter::In("status".into(), terminal),
        move |sim, r| {
            let Ok(docs) = r else { return };
            for job in job_ids(&docs) {
                let has_pods = !h5
                    .kube
                    .pods_matching(&labels! {"job" => job.as_str()})
                    .is_empty();
                let has_volume = h5.nfs.find_volume(&paths::volume(&job)).is_some();
                if has_pods || has_volume {
                    sim.record("lcm", format!("scan: GC leftovers of terminal job {job}"));
                    sim.metrics().inc(crate::metrics::LCM_SCAN_GC, &[]);
                    teardown_job(sim, &h5, &job, true);
                } else {
                    // Cluster-side resources are gone, but a teardown that
                    // ran during an etcd outage may have lost its
                    // delete_prefix. Probe and re-delete, or the keys leak
                    // forever (nothing else ever looks at them again).
                    let h6 = h5.clone();
                    let prefix = paths::etcd_job_prefix(&job);
                    let prefix2 = prefix.clone();
                    h5.etcd_gc.get_prefix(sim, prefix, move |sim, r| {
                        if matches!(r, Ok(pairs) if !pairs.is_empty()) {
                            sim.record("lcm", format!("scan: GC etcd keys of {job}"));
                            sim.metrics().inc(crate::metrics::LCM_SCAN_GC, &[]);
                            h6.etcd_gc.delete_prefix(sim, prefix2, |_sim, _r| {});
                        }
                    });
                }
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlaas_docstore::obj;

    #[test]
    fn deploying_since_finds_latest_entry() {
        let doc = obj! {
            "_id" => "j",
            "history" => vec![
                obj! {"status" => "PENDING", "t_us" => 10},
                obj! {"status" => "DEPLOYING", "t_us" => 20},
                obj! {"status" => "DEPLOYING", "t_us" => 50},
            ],
        };
        assert_eq!(deploying_since(&doc), Some(SimTime::from_micros(50)));
    }

    #[test]
    fn deploying_since_absent_when_never_deployed() {
        let doc = obj! {
            "_id" => "j",
            "history" => vec![obj! {"status" => "PENDING", "t_us" => 10}],
        };
        assert_eq!(deploying_since(&doc), None);
        assert_eq!(deploying_since(&obj! {"_id" => "j"}), None);
        assert_eq!(deploying_since(&Value::Null), None);
    }

    #[test]
    fn deploying_since_rejects_negative_timestamp() {
        // Regression: `t_us as i64 as u64` used to wrap -1 to u64::MAX,
        // a far-future time that made every DEPLOYING job look fresh.
        let doc = obj! {
            "_id" => "j",
            "history" => vec![obj! {"status" => "DEPLOYING", "t_us" => -1}],
        };
        assert_eq!(deploying_since(&doc), None);
        // A later well-formed entry still wins over an earlier corrupt one.
        let doc = obj! {
            "_id" => "j",
            "history" => vec![
                obj! {"status" => "DEPLOYING", "t_us" => -5},
                obj! {"status" => "DEPLOYING", "t_us" => 40},
            ],
        };
        assert_eq!(deploying_since(&doc), Some(SimTime::from_micros(40)));
    }

    #[test]
    fn job_ids_extracts_in_order() {
        let docs = vec![obj! {"_id" => "a"}, obj! {"x" => 1}, obj! {"_id" => "b"}];
        let ids = job_ids(&docs);
        assert_eq!(ids, vec![JobId::new("a"), JobId::new("b")]);
    }
}
