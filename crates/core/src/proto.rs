//! The platform's RPC protocol (the GRPC surface of §III-c).

use dlaas_docstore::{obj, Value};
use dlaas_net::RpcLayer;

use crate::job::{JobId, JobStatus};
use crate::manifest::TrainingManifest;

/// Requests to the DLaaS API service (client-facing) and between core
/// services (API → LCM).
#[derive(Debug, Clone, PartialEq)]
pub enum CoreRequest {
    /// Submit a training job.
    Submit {
        /// Tenant API key.
        api_key: String,
        /// The job manifest.
        manifest: TrainingManifest,
    },
    /// Read a job's status.
    GetStatus {
        /// Tenant API key.
        api_key: String,
        /// The job.
        job: JobId,
    },
    /// List the tenant's jobs.
    ListJobs {
        /// Tenant API key.
        api_key: String,
    },
    /// Terminate a job.
    Kill {
        /// Tenant API key.
        api_key: String,
        /// The job.
        job: JobId,
    },
    /// Fetch a learner's training log.
    GetLogs {
        /// Tenant API key.
        api_key: String,
        /// The job.
        job: JobId,
        /// Learner ordinal.
        learner: u32,
    },
    /// API → LCM: deploy an accepted job.
    DeployJob {
        /// The job.
        job: JobId,
    },
    /// API → LCM: stop and tear down a job.
    StopJob {
        /// The job.
        job: JobId,
    },
}

/// Point-in-time view of a job returned by `GetStatus`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobInfo {
    /// The job id.
    pub job: JobId,
    /// User-assigned name.
    pub name: String,
    /// Current lifecycle status.
    pub status: JobStatus,
    /// `(status, simulated-microseconds)` transition history — the
    /// timestamped updates users rely on "for job profiling and
    /// debugging" (§II).
    pub history: Vec<(JobStatus, u64)>,
    /// Last reported global training iteration.
    pub iteration: u64,
    /// Total learner restarts observed (users "expect to be notified when
    /// DL jobs are restarted", §II).
    pub learner_restarts: u64,
    /// Measured training throughput, when the job has completed.
    pub images_per_sec: Option<f64>,
    /// Last known per-learner phases `(ordinal, phase string)`, mirrored
    /// from etcd by the Guardian while the job runs.
    pub learners: Vec<(u32, String)>,
}

impl JobInfo {
    /// Serializes the snapshot to a JSON document (e.g. for API clients).
    pub fn to_document(&self) -> Value {
        obj! {
            "job" => self.job.as_str(),
            "name" => self.name.clone(),
            "status" => self.status.to_string(),
            "history" => Value::Arr(
                self.history
                    .iter()
                    .map(|(s, t)| obj! { "status" => s.to_string(), "at_us" => *t })
                    .collect(),
            ),
            "iteration" => self.iteration,
            "learner_restarts" => self.learner_restarts,
            "images_per_sec" => self.images_per_sec,
            "learners" => Value::Arr(
                self.learners
                    .iter()
                    .map(|(ord, phase)| obj! { "ordinal" => *ord, "phase" => phase.clone() })
                    .collect(),
            ),
        }
    }

    /// Parses a document produced by [`JobInfo::to_document`].
    pub fn from_document(doc: &Value) -> Option<JobInfo> {
        Some(JobInfo {
            job: JobId::new(doc.path("job")?.as_str()?),
            name: doc.path("name")?.as_str()?.to_owned(),
            status: doc.path("status")?.as_str()?.parse().ok()?,
            history: doc
                .path("history")?
                .as_arr()?
                .iter()
                .map(|e| {
                    Some((
                        e.path("status")?.as_str()?.parse().ok()?,
                        e.path("at_us")?.as_i64()? as u64,
                    ))
                })
                .collect::<Option<Vec<_>>>()?,
            iteration: doc.path("iteration")?.as_i64()? as u64,
            learner_restarts: doc.path("learner_restarts")?.as_i64()? as u64,
            images_per_sec: match doc.path("images_per_sec")? {
                Value::Null => None,
                v => Some(v.as_f64()?),
            },
            learners: doc
                .path("learners")?
                .as_arr()?
                .iter()
                .map(|e| {
                    Some((
                        e.path("ordinal")?.as_i64()? as u32,
                        e.path("phase")?.as_str()?.to_owned(),
                    ))
                })
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// Responses from the DLaaS services.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreResponse {
    /// Job accepted and durably recorded.
    Submitted {
        /// Assigned id.
        job: JobId,
    },
    /// Status snapshot.
    Status(JobInfo),
    /// The tenant's job ids.
    Jobs(Vec<JobId>),
    /// Log lines.
    Logs(Vec<String>),
    /// Generic success.
    Ok,
}

/// The RPC layer carrying platform traffic.
pub type CoreRpc = RpcLayer<CoreRequest, CoreResponse>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_info_document_roundtrip() {
        let info = JobInfo {
            job: JobId::new("j1"),
            name: "train".into(),
            status: JobStatus::Processing,
            history: vec![(JobStatus::Pending, 0), (JobStatus::Processing, 100)],
            iteration: 42,
            learner_restarts: 1,
            images_per_sec: Some(52.0),
            learners: vec![(0, "PROCESSING iter=42".into())],
        };
        let doc = Value::parse_json(&info.to_document().to_json()).unwrap();
        assert_eq!(JobInfo::from_document(&doc), Some(info.clone()));

        let none = JobInfo {
            images_per_sec: None,
            ..info
        };
        assert_eq!(JobInfo::from_document(&none.to_document()), Some(none));
    }
}
