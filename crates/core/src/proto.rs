//! The platform's RPC protocol (the GRPC surface of §III-c).

use dlaas_net::RpcLayer;
use serde::{Deserialize, Serialize};

use crate::job::{JobId, JobStatus};
use crate::manifest::TrainingManifest;

/// Requests to the DLaaS API service (client-facing) and between core
/// services (API → LCM).
#[derive(Debug, Clone, PartialEq)]
pub enum CoreRequest {
    /// Submit a training job.
    Submit {
        /// Tenant API key.
        api_key: String,
        /// The job manifest.
        manifest: TrainingManifest,
    },
    /// Read a job's status.
    GetStatus {
        /// Tenant API key.
        api_key: String,
        /// The job.
        job: JobId,
    },
    /// List the tenant's jobs.
    ListJobs {
        /// Tenant API key.
        api_key: String,
    },
    /// Terminate a job.
    Kill {
        /// Tenant API key.
        api_key: String,
        /// The job.
        job: JobId,
    },
    /// Fetch a learner's training log.
    GetLogs {
        /// Tenant API key.
        api_key: String,
        /// The job.
        job: JobId,
        /// Learner ordinal.
        learner: u32,
    },
    /// API → LCM: deploy an accepted job.
    DeployJob {
        /// The job.
        job: JobId,
    },
    /// API → LCM: stop and tear down a job.
    StopJob {
        /// The job.
        job: JobId,
    },
}

/// Point-in-time view of a job returned by `GetStatus`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobInfo {
    /// The job id.
    pub job: JobId,
    /// User-assigned name.
    pub name: String,
    /// Current lifecycle status.
    pub status: JobStatus,
    /// `(status, simulated-microseconds)` transition history — the
    /// timestamped updates users rely on "for job profiling and
    /// debugging" (§II).
    pub history: Vec<(JobStatus, u64)>,
    /// Last reported global training iteration.
    pub iteration: u64,
    /// Total learner restarts observed (users "expect to be notified when
    /// DL jobs are restarted", §II).
    pub learner_restarts: u64,
    /// Measured training throughput, when the job has completed.
    pub images_per_sec: Option<f64>,
    /// Last known per-learner phases `(ordinal, phase string)`, mirrored
    /// from etcd by the Guardian while the job runs.
    pub learners: Vec<(u32, String)>,
}

/// Responses from the DLaaS services.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreResponse {
    /// Job accepted and durably recorded.
    Submitted {
        /// Assigned id.
        job: JobId,
    },
    /// Status snapshot.
    Status(JobInfo),
    /// The tenant's job ids.
    Jobs(Vec<JobId>),
    /// Log lines.
    Logs(Vec<String>),
    /// Generic success.
    Ok,
}

/// The RPC layer carrying platform traffic.
pub type CoreRpc = RpcLayer<CoreRequest, CoreResponse>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_info_serde_roundtrip() {
        let info = JobInfo {
            job: JobId::new("j1"),
            name: "train".into(),
            status: JobStatus::Processing,
            history: vec![(JobStatus::Pending, 0), (JobStatus::Processing, 100)],
            iteration: 42,
            learner_restarts: 1,
            images_per_sec: Some(52.0),
            learners: vec![(0, "PROCESSING iter=42".into())],
        };
        let s = serde_json::to_string(&info).unwrap();
        let back: JobInfo = serde_json::from_str(&s).unwrap();
        assert_eq!(info, back);
    }
}
