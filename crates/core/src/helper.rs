//! The helper pod's containers.
//!
//! "For each DL job, the Guardian also creates a separate helper K8S pod
//! […] which contains a number of 'helper' containers – load-data, log
//! collector, store-results, and controller. The helper pod remains
//! isolated from the learner pods, but both share a common NFS
//! filesystem […]. The shared NFS volume enables the controller container
//! […] to monitor the execution and exit status of the learner processes"
//! (§III-e). The controller then records per-learner status in etcd
//! (§III-f), from where the Guardian aggregates it.
//!
//! Every helper is stateless across restarts: all coordination state
//! lives on the NFS volume (markers, counters, exit files) or in etcd, so
//! a restarted helper picks up exactly where its predecessor died.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use dlaas_kube::{Cleanup, ProcessCtx};
use dlaas_objstore::ObjectBody;
use dlaas_sharedfs::Mount;
use dlaas_sim::{Sim, SimDuration};

use crate::handles::Handles;
use crate::job::{JobId, LearnerPhase};
use crate::manifest::TrainingManifest;
use crate::paths;

/// Shared bootstrap: mount the job volume and read the jobspec, retrying
/// until the Guardian has provisioned both. Calls `ready` once available;
/// gives up silently when the process dies or the volume disappears for
/// good (job torn down).
fn with_jobspec(
    h: &Handles,
    sim: &mut Sim,
    ctx: &ProcessCtx,
    ready: impl FnOnce(&mut Sim, Mount, TrainingManifest) + 'static,
) {
    let h = h.clone();
    let ctx = ctx.clone();
    let job = JobId::new(ctx.arg.clone());
    try_bootstrap(h, sim, ctx, job, ready, 0);
}

#[allow(clippy::only_used_in_recursion)]
fn try_bootstrap(
    h: Handles,
    sim: &mut Sim,
    ctx: ProcessCtx,
    job: JobId,
    ready: impl FnOnce(&mut Sim, Mount, TrainingManifest) + 'static,
    attempt: u32,
) {
    if !ctx.is_alive() {
        return;
    }
    let volume = h.nfs.find_volume(&paths::volume(&job));
    if let Some(vol) = volume {
        if let Ok(mount) = h.nfs.mount(&vol) {
            if let Ok(spec) = mount.read_file(paths::NFS_JOBSPEC) {
                if let Ok(manifest) = TrainingManifest::from_json(&spec) {
                    ready(sim, mount, manifest);
                    return;
                }
            }
        }
    }
    if attempt > 600 {
        ctx.record(sim, "giving up waiting for job volume");
        return;
    }
    sim.schedule_in(SimDuration::from_millis(500), move |sim| {
        try_bootstrap(h, sim, ctx, job, ready, attempt + 1);
    });
}

// ----------------------------------------------------------------------
// controller
// ----------------------------------------------------------------------

#[derive(Default)]
struct ControllerState {
    /// Last status string written to etcd per learner (dedup).
    written: BTreeMap<u32, String>,
    data_announced: bool,
    progress_written: u64,
    restarts_written: u64,
    throughput_written: bool,
    store_go_written: bool,
    store_done_written: bool,
}

/// Behavior factory for the controller container (arg = job id).
pub fn controller_behavior(h: Handles, sim: &mut Sim, ctx: ProcessCtx) -> Cleanup {
    let job = JobId::new(ctx.arg.clone());
    let etcd = h.etcd_client(&format!(
        "{}/{}#{}",
        ctx.pod, ctx.container, ctx.incarnation
    ));
    let poll = h.config.controller_poll;
    let max_failures = h.config.learner_max_failures;
    let ctx2 = ctx.clone();
    let etcd_for_cleanup = etcd.clone();
    with_jobspec(&h, sim, &ctx, move |sim, mount, manifest| {
        ctx2.record(sim, "controller online; polling learner files");
        let state = Rc::new(RefCell::new(ControllerState::default()));
        let alive = ctx2.alive_flag();
        dlaas_sim::every(sim, poll, move |sim, _n| {
            if !alive.get() {
                return false;
            }
            controller_tick(sim, &etcd, &mount, &manifest, &job, &state, max_failures);
            true
        });
    });
    // Per-incarnation etcd client: close on exit or its watch-net
    // endpoint leaks per controller restart.
    Box::new(move |sim| etcd_for_cleanup.close(sim))
}

#[allow(clippy::too_many_arguments)]
fn controller_tick(
    sim: &mut Sim,
    etcd: &dlaas_etcd::EtcdClient,
    mount: &Mount,
    manifest: &TrainingManifest,
    job: &JobId,
    state: &Rc<RefCell<ControllerState>>,
    max_failures: u32,
) {
    // Data-loaded marker → etcd. The flag only stays set when the put
    // succeeded; an etcd outage re-arms it for the next tick.
    if mount.exists(paths::NFS_DATA_LOADED) && !state.borrow().data_announced {
        state.borrow_mut().data_announced = true;
        let state2 = state.clone();
        etcd.put(sim, paths::etcd_data(job), "loaded", move |_s, r| {
            if r.is_err() {
                state2.borrow_mut().data_announced = false;
            }
        });
    }

    let mut progress: u64 = 0;
    let mut restarts_total: u64 = 0;
    let mut all_completed = true;

    for ord in 0..manifest.learners {
        // Restart counter (maintained by the learner on NFS, so it
        // survives both learner and controller crashes).
        let starts: u64 = mount
            .read_file(&paths::nfs_learner_restarts(ord))
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        restarts_total += starts.saturating_sub(1);

        // Determine the learner's phase from its files.
        let mut phase: Option<LearnerPhase> = mount
            .read_file(&paths::nfs_learner_status(ord))
            .ok()
            .and_then(|s| s.parse().ok());
        if let Ok(exit) = mount.read_file(&paths::nfs_learner_exit(ord)) {
            if exit == "0" {
                phase = Some(LearnerPhase::Completed);
            }
        }
        // The restart budget: every start beyond the first is a recovery
        // from some failure (orderly or crash). Exhausting the budget is a
        // permanent failure the Guardian turns into a FAILED job.
        if starts > max_failures as u64 && !matches!(phase, Some(LearnerPhase::Completed)) {
            phase = Some(LearnerPhase::Failed);
        }
        let phase = phase.unwrap_or(LearnerPhase::Downloading);
        if let Some(iter) = phase.iteration() {
            progress = progress.max(iter);
        }
        if phase.is_completed() {
            progress = progress.max(manifest.iterations);
        } else {
            all_completed = false;
        }

        // Record in etcd (deduplicated — puts are idempotent anyway). On
        // failure the dedup entry is dropped so the next tick retries.
        let s = phase.to_string();
        let stale = state.borrow().written.get(&ord) != Some(&s);
        if stale {
            state.borrow_mut().written.insert(ord, s.clone());
            let state2 = state.clone();
            etcd.put(sim, paths::etcd_learner(job, ord), s, move |_s, r| {
                if r.is_err() {
                    state2.borrow_mut().written.remove(&ord);
                }
            });
        }
    }

    // Aggregate progress / restart counters.
    {
        let mut st = state.borrow_mut();
        if progress != st.progress_written {
            st.progress_written = progress;
            etcd.put(
                sim,
                paths::etcd_progress(job),
                progress.to_string(),
                |_s, _r| {},
            );
        }
        if restarts_total != st.restarts_written {
            st.restarts_written = restarts_total;
            etcd.put(
                sim,
                paths::etcd_restarts(job),
                restarts_total.to_string(),
                |_s, _r| {},
            );
        }
    }

    // Once every learner reports its measured throughput, publish the sum.
    if all_completed && !state.borrow().throughput_written {
        let mut sum = 0.0;
        let mut have_all = true;
        for ord in 0..manifest.learners {
            match mount
                .read_file(&paths::nfs_learner_throughput(ord))
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
            {
                Some(v) => sum += v,
                None => have_all = false,
            }
        }
        if have_all {
            state.borrow_mut().throughput_written = true;
            etcd.put(
                sim,
                paths::etcd_throughput(job),
                format!("{sum}"),
                |_s, _r| {},
            );
        }
    }

    // Store-results coordination: Guardian writes "go" in etcd; we relay
    // it to NFS for the store-results container, and relay its completion
    // marker back to etcd.
    if mount.exists(paths::NFS_STORE_DONE) {
        if !state.borrow().store_done_written {
            state.borrow_mut().store_done_written = true;
            let state2 = state.clone();
            etcd.put(sim, paths::etcd_store(job), "done", move |_s, r| {
                if r.is_err() {
                    // Re-arm: without the "done" relay the Guardian never
                    // completes the job.
                    state2.borrow_mut().store_done_written = false;
                }
            });
        }
        return;
    }
    if !state.borrow().store_go_written {
        let mount2 = mount.clone();
        let state2 = state.clone();
        etcd.get(sim, paths::etcd_store(job), move |_sim, r| {
            if let Ok(Some(v)) = r {
                // Only latch the flag once the NFS write landed; during an
                // NFS outage window the next tick retries the relay.
                if v == "go"
                    && !state2.borrow().store_go_written
                    && mount2.write_file(paths::NFS_STORE_GO, "go").is_ok()
                {
                    state2.borrow_mut().store_go_written = true;
                }
            }
        });
    }
}

// ----------------------------------------------------------------------
// load-data
// ----------------------------------------------------------------------

/// Behavior factory for the load-data container: stages the training data
/// from the object store onto the shared volume, exactly once per job.
pub fn load_data_behavior(h: Handles, sim: &mut Sim, ctx: ProcessCtx) -> Cleanup {
    let ctx2 = ctx.clone();
    let h2 = h.clone();
    with_jobspec(&h, sim, &ctx, move |sim, mount, manifest| {
        if mount.exists(paths::NFS_DATA_LOADED) {
            ctx2.record(sim, "data already staged (previous incarnation)");
            ctx2.exit(sim, 0);
            return;
        }
        ctx2.record(
            sim,
            format!("staging {} bytes of training data", manifest.data_bytes),
        );
        download_data(h2, sim, ctx2, mount, manifest, 0);
    });
    Box::new(|_sim| {})
}

#[allow(clippy::only_used_in_recursion)]
fn download_data(
    h: Handles,
    sim: &mut Sim,
    ctx: ProcessCtx,
    mount: Mount,
    manifest: TrainingManifest,
    attempt: u32,
) {
    if !ctx.is_alive() {
        return;
    }
    let nic = ctx.nic.clone();
    let ctx2 = ctx.clone();
    h.objstore.clone().get(
        sim,
        manifest.data_bucket.clone(),
        paths::obj_dataset(&manifest.data_prefix),
        Some(&nic),
        move |sim, r| {
            if !ctx2.is_alive() {
                return;
            }
            // Exiting 0 without the marker on NFS would strand the job:
            // the controller would never announce data-loaded. Treat a
            // failed marker write (NFS outage) like a failed fetch.
            match r {
                Ok(_) if mount.write_file(paths::NFS_DATA_LOADED, "loaded").is_ok() => {
                    sim.metrics().inc(crate::metrics::DATA_STAGED, &[]);
                    ctx2.record(sim, "training data staged");
                    ctx2.exit(sim, 0);
                }
                r => {
                    let why = match r {
                        Ok(_) => "loaded marker write failed".to_owned(),
                        Err(e) => format!("data fetch failed ({e})"),
                    };
                    ctx2.record(sim, format!("{why}; retrying"));
                    sim.schedule_in(SimDuration::from_secs(5), move |sim| {
                        download_data(h, sim, ctx2, mount, manifest, attempt + 1);
                    });
                }
            }
        },
    );
}

// ----------------------------------------------------------------------
// log-collector
// ----------------------------------------------------------------------

/// Behavior factory for the log-collector container: tails learner logs
/// on NFS and mirrors them to the object store, "irrespective of the
/// stage [the job] is in, even if it crashes/fails" (§II).
pub fn log_collector_behavior(h: Handles, sim: &mut Sim, ctx: ProcessCtx) -> Cleanup {
    let job = JobId::new(ctx.arg.clone());
    let flush = h.config.log_flush;
    let objstore = h.objstore.clone();
    let ctx2 = ctx.clone();
    with_jobspec(&h, sim, &ctx, move |sim, mount, manifest| {
        ctx2.record(sim, "log collector online");
        // lines already uploaded per learner (in-memory: a restart simply
        // re-uploads from scratch, which is idempotent).
        let uploaded: Rc<RefCell<BTreeMap<u32, usize>>> = Rc::new(RefCell::new(BTreeMap::new()));
        let alive = ctx2.alive_flag();
        let nic = ctx2.nic.clone();
        dlaas_sim::every(sim, flush, move |sim, _n| {
            if !alive.get() {
                return false;
            }
            for ord in 0..manifest.learners {
                let path = paths::nfs_learner_log(ord);
                let have = mount.line_count(&path);
                let done = uploaded.borrow().get(&ord).copied().unwrap_or(0);
                if have > done {
                    let Ok(lines) = mount.read_lines_from(&path, 0) else {
                        continue;
                    };
                    uploaded.borrow_mut().insert(ord, have);
                    objstore.put(
                        sim,
                        manifest.results_bucket.clone(),
                        paths::obj_log(&job, ord),
                        ObjectBody::Text(lines.join("\n")),
                        Some(&nic),
                        |_sim, _r| {},
                    );
                }
            }
            true
        });
    });
    Box::new(|_sim| {})
}

// ----------------------------------------------------------------------
// store-results
// ----------------------------------------------------------------------

/// Behavior factory for the store-results container: when the controller
/// signals (on behalf of the Guardian), uploads the trained model to the
/// object store and marks completion on NFS.
pub fn store_results_behavior(h: Handles, sim: &mut Sim, ctx: ProcessCtx) -> Cleanup {
    let job = JobId::new(ctx.arg.clone());
    let objstore = h.objstore.clone();
    let ctx2 = ctx.clone();
    with_jobspec(&h, sim, &ctx, move |sim, mount, manifest| {
        if mount.exists(paths::NFS_STORE_DONE) {
            ctx2.record(sim, "results already stored");
            ctx2.exit(sim, 0);
            return;
        }
        let alive = ctx2.alive_flag();
        let busy = Rc::new(std::cell::Cell::new(false));
        let nic = ctx2.nic.clone();
        dlaas_sim::every(sim, SimDuration::from_millis(1000), move |sim, _n| {
            if !alive.get() {
                return false;
            }
            if busy.get() || !mount.exists(paths::NFS_STORE_GO) {
                return true;
            }
            busy.set(true);
            let bytes = dlaas_gpu::checkpoint_bytes(manifest.model);
            let mount2 = mount.clone();
            let ctx3 = ctx2.clone();
            let busy2 = busy.clone();
            objstore.put(
                sim,
                manifest.results_bucket.clone(),
                paths::obj_result_model(&job),
                ObjectBody::Synthetic(bytes),
                Some(&nic),
                move |sim, r| {
                    if !ctx3.is_alive() {
                        return;
                    }
                    // Exiting 0 without the done marker would wedge the job
                    // in STORING forever; during an NFS outage keep the
                    // timer alive and retry (the upload is idempotent).
                    match r {
                        Ok(()) if mount2.write_file(paths::NFS_STORE_DONE, "done").is_ok() => {
                            sim.metrics().inc(crate::metrics::RESULTS_STORED, &[]);
                            ctx3.record(sim, "results uploaded");
                            ctx3.exit(sim, 0);
                        }
                        r => {
                            let why = match r {
                                Ok(()) => "done marker write failed".to_owned(),
                                Err(e) => format!("result upload failed: {e}"),
                            };
                            ctx3.record(sim, format!("{why}; will retry"));
                            busy2.set(false); // timer retries on a later tick
                        }
                    }
                },
            );
            true // keep ticking; exit (alive = false) is what stops us
        });
    });
    Box::new(|_sim| {})
}
