//! Shared substrate handles passed to every service behavior.

use std::rc::Rc;

use dlaas_docstore::MongoRpc;
use dlaas_etcd::{EtcdClient, EtcdCluster};
use dlaas_kube::Kube;
use dlaas_objstore::ObjectStore;
use dlaas_sharedfs::NfsServer;

use crate::config::CoreConfig;
use crate::mongo::MetaClient;
use crate::ownership::ShardTracker;
use crate::proto::CoreRpc;

/// Name of the Kubernetes service fronting the API pods.
pub const API_SERVICE: &str = "dlaas-api";
/// Name of the Kubernetes service fronting the LCM pods.
pub const LCM_SERVICE: &str = "dlaas-lcm";

/// Everything a platform component needs to reach the substrates.
/// Cloning shares the underlying handles.
#[derive(Clone)]
pub struct Handles {
    /// Control-plane RPC (client ↔ API ↔ LCM).
    pub rpc: CoreRpc,
    /// Metadata-store RPC.
    pub mongo: MongoRpc,
    /// The replicated etcd cluster.
    pub etcd: Rc<EtcdCluster>,
    /// The cloud object store.
    pub objstore: ObjectStore,
    /// The shared NFS service.
    pub nfs: NfsServer,
    /// The Kubernetes cluster.
    pub kube: Kube,
    /// Shared etcd client for garbage collection. Teardown runs from many
    /// contexts (LCM scan, Guardian cleanup, kill path); constructing a
    /// fresh client per call would leak one watch-net registration per
    /// job on the etcd servers, so they all share this one handle.
    pub etcd_gc: EtcdClient,
    /// Shard-ownership ledger the LCM replicas report into and the
    /// invariant checker reads (observability only — etcd's lease + CAS
    /// owner keys are the source of truth for who sweeps what).
    pub shard_tracker: ShardTracker,
    /// Platform configuration.
    pub config: Rc<CoreConfig>,
}

impl std::fmt::Debug for Handles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handles").finish_non_exhaustive()
    }
}

impl Handles {
    /// A metadata client identified as `who`.
    pub fn meta(&self, who: &str) -> MetaClient {
        MetaClient::new(self.mongo.clone(), who)
    }

    /// An etcd client identified as `who`.
    pub fn etcd_client(&self, who: &str) -> EtcdClient {
        self.etcd.client(who)
    }
}
