//! The platform façade: builds every substrate, wires the core services
//! onto the simulated cluster, and exposes operator/test utilities
//! (tenants, datasets, fault injection, direct metadata reads).

use std::cell::RefCell;
use std::rc::Rc;

use dlaas_docstore::{Filter, MongoRpc, MongoServer, MongoTimings, StoreError, Value};
use dlaas_etcd::EtcdCluster;
use dlaas_gpu::GpuKind;
use dlaas_kube::{
    labels, BehaviorRegistry, ContainerSpec, ImageRef, Kube, KubeConfig, NodeSpec, PodSpec,
    Resources,
};
use dlaas_net::{LatencyModel, RpcLayer};
use dlaas_objstore::{ObjectBody, ObjectStore};
use dlaas_sharedfs::NfsServer;
use dlaas_sim::{Sim, SimDuration};

use crate::api::api_behavior;
use crate::client::DlaasClient;
use crate::config::CoreConfig;
use crate::guardian::guardian_behavior;
use crate::handles::{Handles, API_SERVICE, LCM_SERVICE};
use crate::helper::{
    controller_behavior, load_data_behavior, log_collector_behavior, store_results_behavior,
};
use crate::job::{JobId, JobStatus};
use crate::lcm::lcm_behavior;
use crate::learner::learner_behavior;
use crate::mongo::{MetaClient, JOBS, TENANTS};
use crate::proto::{CoreRpc, JobInfo};
use crate::tenant::Tenant;

/// One class of GPU nodes in the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuNodeSpec {
    /// GPU model installed.
    pub kind: GpuKind,
    /// Number of nodes of this class.
    pub count: u32,
    /// GPUs per node.
    pub gpus_each: u32,
}

/// Full platform configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformConfig {
    /// Control-plane tunables.
    pub core: CoreConfig,
    /// Kubernetes timing knobs.
    pub kube: KubeConfig,
    /// CPU-only nodes hosting the core services.
    pub core_nodes: u32,
    /// GPU node classes.
    pub gpu_nodes: Vec<GpuNodeSpec>,
    /// Object-store aggregate service bandwidth (bytes/sec).
    pub objstore_bytes_per_sec: f64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            core: CoreConfig::default(),
            kube: KubeConfig::default(),
            core_nodes: 3,
            gpu_nodes: vec![
                GpuNodeSpec {
                    kind: GpuKind::K80,
                    count: 2,
                    gpus_each: 4,
                },
                GpuNodeSpec {
                    kind: GpuKind::P100Pcie,
                    count: 2,
                    gpus_each: 2,
                },
            ],
            objstore_bytes_per_sec: 2e9,
        }
    }
}

/// The assembled platform. Cloning shares the underlying handles (so an
/// invariant monitor can hold one while tests drive the original).
#[derive(Clone)]
pub struct DlaasPlatform {
    handles: Handles,
    /// The live MongoDB server; a shared slot so scheduled recovery events
    /// can swap a recovered server in.
    mongo: Rc<RefCell<Rc<MongoServer>>>,
    mongo_rpc: MongoRpc,
    /// Clone-handle of the sim's metrics registry (same underlying store).
    metrics: dlaas_sim::Registry,
}

impl std::fmt::Debug for DlaasPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DlaasPlatform").finish_non_exhaustive()
    }
}

impl DlaasPlatform {
    /// Builds the platform: substrates, cluster nodes, behavior registry,
    /// and the API/LCM deployments with their services.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(sim: &mut Sim, cfg: PlatformConfig) -> Self {
        // dlaas-lint: allow(panic-in-core): boot-time assertion on harness-supplied config, documented under `# Panics`; a malformed PlatformConfig is a programming error in the experiment setup, never reachable from runtime platform data.
        cfg.core.validate().expect("invalid core config");
        crate::metrics::register(sim.metrics());

        let registry = BehaviorRegistry::new();
        let kube = Kube::new(sim, cfg.kube.clone(), registry.clone());
        for i in 0..cfg.core_nodes {
            kube.add_node(NodeSpec::cpu(format!("core-{i}"), 16_000, 65_536));
        }
        for class in &cfg.gpu_nodes {
            for i in 0..class.count {
                kube.add_node(NodeSpec::gpu(
                    format!("gpu-{}-{i}", class.kind.to_string().to_lowercase()),
                    24_000,
                    262_144,
                    class.gpus_each,
                    class.kind,
                ));
            }
        }

        let rpc: CoreRpc = RpcLayer::new(sim, LatencyModel::datacenter());
        let mongo_rpc: MongoRpc = RpcLayer::new(sim, LatencyModel::datacenter());
        let mongo = MongoServer::new(mongo_rpc.clone());
        // The LCM sweeps and quota counts pin `status`; index it up front
        // (journaled, so it survives crash/recovery) to keep those queries
        // proportional to the matching set, not the whole jobs collection.
        mongo
            .store()
            .borrow_mut()
            .create_index(crate::mongo::JOBS, "status");
        let etcd = Rc::new(EtcdCluster::new_3way(sim));
        let objstore = ObjectStore::new(cfg.objstore_bytes_per_sec);
        let nfs = NfsServer::new();

        // dlaas-lint: allow(resource-leak): process-lifetime singleton — the lcm-gc client lives in Handles for the whole simulation and is shared by every LCM incarnation's GC sweep
        let etcd_gc = etcd.client("lcm-gc");
        let handles = Handles {
            rpc,
            mongo: mongo_rpc.clone(),
            etcd,
            objstore,
            nfs,
            kube: kube.clone(),
            etcd_gc,
            shard_tracker: crate::ownership::ShardTracker::new(cfg.core.lcm_shards),
            config: Rc::new(cfg.core.clone()),
        };

        // Register every platform behavior.
        let reg =
            |name: &str,
             f: fn(Handles, &mut Sim, dlaas_kube::ProcessCtx) -> dlaas_kube::Cleanup| {
                let h = handles.clone();
                registry.register(name, move |sim, ctx| f(h.clone(), sim, ctx));
            };
        reg("api", api_behavior);
        reg("lcm", lcm_behavior);
        reg("guardian", guardian_behavior);
        reg("controller", controller_behavior);
        reg("load-data", load_data_behavior);
        reg("log-collector", log_collector_behavior);
        reg("store-results", store_results_behavior);
        reg("learner", learner_behavior);

        // Core services as Deployments + Services.
        let api_pod = PodSpec::new(
            "unused",
            ContainerSpec::new("api", ImageRef::microservice("dlaas/api"), "api")
                .with_cold_start(cfg.core.api_cold_start),
        )
        .with_labels(labels! {"role" => "core", "app" => "api"})
        .with_resources(Resources::new(1000, 2048, 0), None);
        kube.create_deployment(sim, "dlaas-api", cfg.core.api_replicas, api_pod);
        kube.create_service(sim, API_SERVICE, labels! {"app" => "api"});

        let lcm_pod = PodSpec::new(
            "unused",
            ContainerSpec::new("lcm", ImageRef::microservice("dlaas/lcm"), "lcm")
                .with_cold_start(cfg.core.lcm_cold_start),
        )
        .with_labels(labels! {"role" => "core", "app" => "lcm"})
        .with_resources(Resources::new(1000, 2048, 0), None);
        kube.create_deployment(sim, "dlaas-lcm", cfg.core.lcm_replicas, lcm_pod);
        kube.create_service(sim, LCM_SERVICE, labels! {"app" => "lcm"});

        DlaasPlatform {
            handles,
            mongo: Rc::new(RefCell::new(mongo)),
            mongo_rpc,
            metrics: sim.metrics().clone(),
        }
    }

    /// Builds the platform with defaults and runs until it is ready.
    pub fn bootstrapped(sim: &mut Sim) -> Self {
        let p = Self::new(sim, PlatformConfig::default());
        p.run_until_ready(sim, SimDuration::from_secs(60));
        p
    }

    /// Shared substrate handles.
    pub fn handles(&self) -> &Handles {
        &self.handles
    }

    /// The Kubernetes cluster.
    pub fn kube(&self) -> &Kube {
        &self.handles.kube
    }

    /// The object store.
    pub fn objstore(&self) -> &ObjectStore {
        &self.handles.objstore
    }

    /// The NFS service.
    pub fn nfs(&self) -> &NfsServer {
        &self.handles.nfs
    }

    /// The etcd cluster.
    pub fn etcd(&self) -> &Rc<EtcdCluster> {
        &self.handles.etcd
    }

    /// The shard-ownership ledger the LCM replicas report into.
    pub fn shard_tracker(&self) -> &crate::ownership::ShardTracker {
        &self.handles.shard_tracker
    }

    /// The platform's metrics registry — the same deterministic store the
    /// simulation kernel hands to every instrumented component.
    pub fn metrics(&self) -> &dlaas_sim::Registry {
        &self.metrics
    }

    /// Prometheus-style text exposition of every metric recorded so far.
    /// Deterministic: one seed produces one byte-identical page.
    pub fn expose_metrics(&self) -> String {
        self.metrics.expose()
    }

    /// `true` once both core services resolve and etcd has a leader.
    pub fn ready(&self, sim: &Sim) -> bool {
        self.handles
            .kube
            .resolve_service(sim, API_SERVICE)
            .is_some()
            && self
                .handles
                .kube
                .resolve_service(sim, LCM_SERVICE)
                .is_some()
            && self.handles.etcd.leader_id().is_some()
    }

    /// Runs the simulation until [`DlaasPlatform::ready`] or the limit.
    ///
    /// # Panics
    ///
    /// Panics if the platform is not ready within `limit`.
    pub fn run_until_ready(&self, sim: &mut Sim, limit: SimDuration) {
        let deadline = sim.now() + limit;
        loop {
            if self.ready(sim) {
                return;
            }
            match sim.peek_time() {
                Some(t) if t <= deadline => {
                    sim.step();
                }
                _ if sim.now() < deadline => {
                    let next = (sim.now() + SimDuration::from_millis(100)).min(deadline);
                    sim.run_until(next);
                }
                // dlaas-lint: allow(panic-in-core): test/bench readiness helper with documented `# Panics`; runs in the experiment harness before any workload, not on a platform control-plane path.
                _ => panic!("platform not ready within {limit}"),
            }
        }
    }

    /// Scales the API deployment (§I goal 2: horizontal scalability — the
    /// API tier grows and shrinks behind its service without disruption).
    pub fn scale_api(&self, sim: &mut Sim, replicas: u32) {
        self.handles
            .kube
            .scale_deployment(sim, "dlaas-api", replicas);
    }

    /// Scales the LCM deployment.
    pub fn scale_lcm(&self, sim: &mut Sim, replicas: u32) {
        self.handles
            .kube
            .scale_deployment(sim, "dlaas-lcm", replicas);
    }

    /// Registers a tenant (bootstrap path: writes the journaled store
    /// directly, as an operator would before opening the service).
    ///
    /// # Errors
    ///
    /// Propagates the store's rejection (e.g. a duplicate tenant id) so
    /// bootstrap scripts fail loudly instead of silently running with a
    /// missing tenant.
    pub fn add_tenant(&self, tenant: &Tenant) -> Result<(), StoreError> {
        self.mongo
            .borrow()
            .store()
            .borrow_mut()
            .insert(TENANTS, tenant.to_document())
            .map(|_id| ())
    }

    /// Creates a bucket and stages a synthetic training dataset in it.
    pub fn seed_dataset(&self, bucket: &str, prefix: &str, bytes: u64) {
        self.handles.objstore.seed(
            bucket,
            crate::paths::obj_dataset(prefix),
            ObjectBody::Synthetic(bytes),
        );
    }

    /// Creates a results bucket.
    pub fn create_bucket(&self, bucket: &str) {
        self.handles.objstore.create_bucket(bucket);
    }

    /// A client for the given tenant.
    pub fn client(&self, who: &str, api_key: &str) -> DlaasClient {
        DlaasClient::new(self.handles.clone(), who, api_key)
    }

    // ------------------------------------------------------------------
    // Direct metadata reads (tests & harnesses)
    // ------------------------------------------------------------------

    /// Every job document currently in the store (invariant checking and
    /// test harnesses; bypasses the API).
    pub fn job_documents(&self) -> Vec<Value> {
        self.mongo
            .borrow()
            .store()
            .borrow()
            .find(JOBS, &Filter::True)
    }

    /// Every tenant document currently in the store (the invariant
    /// checker's fairness rule needs quotas and weights).
    pub fn tenant_documents(&self) -> Vec<Value> {
        self.mongo
            .borrow()
            .store()
            .borrow()
            .find(TENANTS, &Filter::True)
    }

    /// Ids of every accepted (durably recorded) job.
    pub fn all_job_ids(&self) -> Vec<JobId> {
        self.job_documents()
            .iter()
            .filter_map(|d| d.path("_id").and_then(Value::as_str))
            .map(JobId::new)
            .collect()
    }

    /// Reads a job's document straight from the store (bypasses the API).
    pub fn job_document(&self, job: &JobId) -> Option<Value> {
        self.mongo
            .borrow()
            .store()
            .borrow()
            .find_one(JOBS, &Filter::eq("_id", job.as_str()))
    }

    /// Parsed [`JobInfo`] straight from the store (`None` if the job is
    /// unknown or its document is malformed).
    pub fn job_info(&self, job: &JobId) -> Option<JobInfo> {
        self.job_document(job)
            .and_then(|d| MetaClient::parse_job_info(&d).ok())
    }

    /// Current status straight from the store.
    pub fn job_status(&self, job: &JobId) -> Option<JobStatus> {
        self.job_info(job).map(|i| i.status)
    }

    /// Metering counters for an API key: `(request_kind, count)` pairs, as
    /// accumulated by the API service (§III-c). `None` until the key has
    /// made at least one request.
    pub fn metering(&self, api_key: &str) -> Option<Vec<(String, i64)>> {
        let doc = self
            .mongo
            .borrow()
            .store()
            .borrow()
            .find_one(crate::api::METERING, &Filter::eq("_id", api_key))?;
        let obj = doc.as_obj()?;
        Some(
            obj.iter()
                .filter(|(k, _)| *k != "_id")
                .filter_map(|(k, v)| Some((k.clone(), v.as_i64()?)))
                .collect(),
        )
    }

    /// Runs the simulation until the job reaches `status` (or any terminal
    /// status, which also stops the wait) or the limit passes. Returns the
    /// status seen last.
    pub fn wait_for_status(
        &self,
        sim: &mut Sim,
        job: &JobId,
        status: JobStatus,
        limit: SimDuration,
    ) -> Option<JobStatus> {
        let deadline = sim.now() + limit;
        loop {
            let cur = self.job_status(job);
            if cur == Some(status) || cur.is_some_and(super::job::JobStatus::is_terminal) {
                return cur;
            }
            match sim.peek_time() {
                Some(t) if t <= deadline => {
                    sim.step();
                }
                _ if sim.now() < deadline => {
                    let next = (sim.now() + SimDuration::from_millis(100)).min(deadline);
                    sim.run_until(next);
                }
                _ => return cur,
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault operations (the paper's kubectl experiments)
    // ------------------------------------------------------------------

    /// Crashes the metadata store process. The journal (disk) survives;
    /// [`DlaasPlatform::restart_mongo`] recovers from it. When
    /// `auto_restart` is set, recovery is scheduled automatically after
    /// the given delay (mimicking the K8s restart of the MongoDB pod).
    pub fn crash_mongo(&self, sim: &mut Sim, auto_restart: Option<SimDuration>) {
        self.mongo.borrow().crash();
        sim.record("platform", "mongodb crashed");
        if let Some(d) = auto_restart {
            let journal = self.mongo.borrow().journal();
            let rpc = self.mongo_rpc.clone();
            let slot = self.mongo.clone();
            sim.schedule_in(d, move |sim| {
                let server = MongoServer::recover(rpc, journal, MongoTimings::default());
                *slot.borrow_mut() = server;
                sim.record("platform", "mongodb recovered from journal");
            });
        }
    }

    /// Starts or ends a metadata-store write stall: mutations are dropped
    /// (clients time out and retry) while reads keep serving. A softer
    /// fault than [`DlaasPlatform::crash_mongo`] — it exercises exactly
    /// the paths that must notice an *unacknowledged* write.
    pub fn set_mongo_write_failures(&self, sim: &mut Sim, fail: bool) {
        self.mongo.borrow().set_fail_writes(fail);
        sim.record(
            "platform",
            if fail {
                "mongodb write stall begins"
            } else {
                "mongodb write stall ends"
            },
        );
    }

    /// Restarts the metadata store immediately from its journal.
    pub fn restart_mongo(&self, sim: &mut Sim) {
        let journal = self.mongo.borrow().journal();
        let server = MongoServer::recover(self.mongo_rpc.clone(), journal, MongoTimings::default());
        *self.mongo.borrow_mut() = server;
        sim.record("platform", "mongodb recovered from journal");
    }
}
