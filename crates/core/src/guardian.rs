//! The Guardian: per-job atomic deployment and monitoring.
//!
//! "The LCM simply instantiates a component called the Guardian with all
//! the metadata of the DL job [as a K8s Job]. The Guardian then executes
//! the multi-step process of actually deploying the DL job […]. If the
//! Guardian crashes in the middle of a job deployment, K8S is guaranteed
//! to restart it. The restarted Guardian will roll back the previous
//! partially deployed DL job and starts a fresh deployment process. In
//! the presence of persistent failures, this process will be repeated for
//! a (configurable) number of times before the Guardian gives up and
//! marks the DL job in MongoDB as FAILED. Once a DL job is successfully
//! deployed, the Guardian is then responsible for monitoring its
//! progress." (§III-d)
//!
//! Instance state is deliberately all volatile: a restarted Guardian must
//! reconstruct everything from MongoDB (job record, attempt counter),
//! Kubernetes (existing resources) and etcd (learner statuses) — that is
//! exactly what makes the deployment atomic under crashes.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use dlaas_docstore::{Filter, Update, Value};
use dlaas_etcd::EtcdClient;
use dlaas_gpu::Framework;
use dlaas_kube::{
    labels, Cleanup, ContainerSpec, ImageRef, NetworkPolicy, PodSpec, ProcessCtx, Resources,
    RestartPolicy,
};
use dlaas_sim::{Sim, SimDuration};

use crate::handles::Handles;
use crate::job::{JobId, JobStatus, LearnerPhase};
use crate::lcm::teardown_job;
use crate::manifest::TrainingManifest;
use crate::mongo::{MetaClient, JOBS};
use crate::paths;

/// Image for a framework's learner container.
fn framework_image(f: Framework) -> ImageRef {
    ImageRef::new(format!("dlaas/{f}").to_lowercase(), f.image_bytes())
}

#[derive(Default)]
struct MonitorState {
    learners: BTreeMap<u32, LearnerPhase>,
    store: Option<String>,
    throughput: Option<f64>,
    progress: u64,
    restarts: u64,
    moved_processing: bool,
    moved_storing: bool,
    finished: bool,
    last_progress_written: u64,
    last_restarts_written: u64,
    last_learners_written: String,
    poll_round: u64,
}

struct Guardian {
    h: Handles,
    ctx: ProcessCtx,
    job: JobId,
    meta: MetaClient,
    etcd: EtcdClient,
    manifest: RefCell<Option<TrainingManifest>>,
    mon: RefCell<MonitorState>,
    /// Sim-time (µs) the current deployment attempt started, for the
    /// deploy-to-PROCESSING histogram. `None` while only monitoring.
    deploy_started_us: Cell<Option<u64>>,
    /// Owning tenant and submission stamp, loaded at boot — the
    /// per-tenant turnaround histogram is observed on the terminal
    /// transition this guardian applies.
    tenant: RefCell<Option<String>>,
    submitted_us: Cell<u64>,
}

/// Behavior factory for the Guardian container (arg = job id).
pub fn guardian_behavior(h: Handles, sim: &mut Sim, ctx: ProcessCtx) -> Cleanup {
    let job = JobId::new(ctx.arg.clone());
    let meta = h.meta(&ctx.pod);
    let etcd = h.etcd_client(&format!("{}#{}", ctx.pod, ctx.incarnation));
    let g = Rc::new(Guardian {
        h,
        ctx,
        job,
        meta,
        etcd,
        manifest: RefCell::new(None),
        mon: RefCell::new(MonitorState::default()),
        deploy_started_us: Cell::new(None),
        tenant: RefCell::new(None),
        submitted_us: Cell::new(0),
    });
    g.ctx.record(sim, "guardian up; loading job record");
    let etcd_for_cleanup = g.etcd.clone();
    g.clone().boot(sim);
    // Each incarnation creates a fresh etcd client; close it on exit or
    // the watch-net endpoint (and server-side watches) leak per restart.
    Box::new(move |sim| etcd_for_cleanup.close(sim))
}

impl Guardian {
    /// The manifest loaded at boot. A `None` here means the in-memory
    /// state was lost in a way the deploy steps cannot recover from
    /// (deploy steps only run after a successful boot load); instead of
    /// panicking the platform process — an unmodelled crash the invariant
    /// checker cannot attribute — the incarnation aborts and K8s restarts
    /// it, bounded by `deploy_max_attempts`.
    fn manifest_or_abort(self: &Rc<Self>, sim: &mut Sim) -> Option<TrainingManifest> {
        let m = self.manifest.borrow().clone();
        if m.is_none() {
            self.ctx
                .record(sim, "manifest missing mid-deploy; aborting incarnation");
            self.ctx.exit(sim, 1);
        }
        m
    }

    fn step_latency(&self) -> SimDuration {
        self.h.config.guardian_step_latency
    }

    fn alive(&self) -> bool {
        self.ctx.is_alive()
    }

    /// Phase 0: load the job record and decide what to do.
    fn boot(self: Rc<Self>, sim: &mut Sim) {
        let me = self.clone();
        let filter = Filter::eq("_id", self.job.as_str());
        self.meta
            .clone()
            .find_one(sim, JOBS, filter, move |sim, r| {
                if !me.alive() {
                    return;
                }
                let doc = match r {
                    Ok(Some(d)) => d,
                    Ok(None) => {
                        // No such job: nothing to guard. Exit non-zero so the
                        // K8s Job eventually gives up.
                        me.ctx.record(sim, "job record missing; aborting");
                        me.ctx.exit(sim, 1);
                        return;
                    }
                    Err(e) => {
                        me.ctx
                            .record(sim, format!("metadata store unavailable: {e}"));
                        me.ctx.exit(sim, 1);
                        return;
                    }
                };
                let status: JobStatus = doc
                    .path("status")
                    .and_then(Value::as_str)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(JobStatus::Failed);
                *me.tenant.borrow_mut() = doc
                    .path("tenant")
                    .and_then(Value::as_str)
                    .map(str::to_owned);
                me.submitted_us.set(
                    doc.path("submitted_us")
                        .and_then(Value::as_i64)
                        .and_then(|us| u64::try_from(us).ok())
                        .unwrap_or(0),
                );
                let manifest = doc
                    .path("manifest")
                    .and_then(Value::as_str)
                    .and_then(|s| TrainingManifest::from_json(s).ok());
                let Some(manifest) = manifest else {
                    me.ctx.record(sim, "corrupt manifest; failing job");
                    me.fail_job(sim, "corrupt manifest");
                    return;
                };
                *me.manifest.borrow_mut() = Some(manifest);

                if status.is_terminal() {
                    // We restarted after the job ended: just make sure nothing
                    // is left behind.
                    me.ctx
                        .record(sim, "job already terminal; cleaning leftovers");
                    teardown_job(sim, &me.h, &me.job, false);
                    me.ctx.exit(sim, 0);
                    return;
                }

                let deployed = me.resources_present();
                if matches!(status, JobStatus::Processing | JobStatus::Storing) && deployed {
                    // Crash during monitoring: resume monitoring only. The
                    // one-shot flags must be seeded from the persisted
                    // status, or this incarnation re-issues the PROCESSING/
                    // STORING transitions — harmless no-ops in Mongo, but
                    // the STORING path also puts store=go, which would
                    // clobber a store=done written while we were down and
                    // leave the job stuck in STORING forever.
                    {
                        let mut mon = me.mon.borrow_mut();
                        mon.moved_processing = status.rank() >= JobStatus::Processing.rank();
                        mon.moved_storing = status == JobStatus::Storing;
                    }
                    if status == JobStatus::Storing {
                        // The predecessor may have died between the STORING
                        // write and its store=go put. An expect-absent CAS
                        // fills that gap without ever overwriting a "go"
                        // (idempotent) or a "done" (the lost-completion
                        // hazard above).
                        me.etcd.cas(
                            sim,
                            paths::etcd_store(&me.job),
                            None,
                            Some("go".into()),
                            |_sim, _r| {},
                        );
                    }
                    me.ctx.record(sim, "resuming monitoring of deployed job");
                    me.start_monitoring(sim);
                    return;
                }

                // Fresh deployment (or retry after a mid-deploy crash).
                let attempts = doc.path("attempts").and_then(Value::as_i64).unwrap_or(0) as u32 + 1;
                let max = me.h.config.deploy_max_attempts;
                if attempts > max {
                    me.ctx.record(
                        sim,
                        format!("deploy attempt {attempts} exceeds limit {max}; giving up"),
                    );
                    sim.metrics().inc(crate::metrics::GUARDIAN_GAVE_UP, &[]);
                    me.fail_job(sim, "deployment retries exhausted");
                    return;
                }
                let me2 = me.clone();
                let filter = Filter::eq("_id", me.job.as_str());
                me.meta.clone().update_one(
                    sim,
                    JOBS,
                    filter,
                    Update::inc("attempts", 1),
                    move |sim, r| {
                        if !me2.alive() {
                            return;
                        }
                        if !matches!(r, Ok(true)) {
                            // The attempt was not durably recorded. Deploying
                            // anyway would let a crash-loop retry without ever
                            // advancing the counter — the paper's bounded
                            // retry guarantee ("for a configurable number of
                            // times", §III-d) rests on this write. Abort and
                            // let K8s restart us against a healthy store.
                            me2.ctx.record(
                                sim,
                                "failed to record deploy attempt; aborting incarnation",
                            );
                            me2.ctx.exit(sim, 1);
                            return;
                        }
                        me2.ctx
                            .record(sim, format!("starting deployment attempt {attempts}"));
                        sim.metrics()
                            .inc(crate::metrics::GUARDIAN_DEPLOY_ATTEMPTS, &[]);
                        // The first attempt has nothing to roll back; only
                        // retries after a mid-deploy crash count.
                        if attempts > 1 {
                            sim.metrics().inc(crate::metrics::GUARDIAN_ROLLBACKS, &[]);
                        }
                        me2.rollback_then_deploy(sim);
                    },
                );
            });
    }

    /// `true` when the job's learner pods exist in the cluster.
    fn resources_present(&self) -> bool {
        !self
            .h
            .kube
            .pods_matching(&labels! {"job" => self.job.as_str(), "role" => "learner"})
            .is_empty()
    }

    /// Records the per-tenant turnaround histogram: submission → terminal
    /// status, queue wait included. Called only on an *applied* terminal
    /// transition (`advance_status` returned true), so racing guardian
    /// incarnations observe each job exactly once.
    fn observe_turnaround(&self, sim: &mut Sim) {
        let Some(tenant) = self.tenant.borrow().clone() else {
            return;
        };
        let elapsed_us = sim
            .now()
            .as_micros()
            .saturating_sub(self.submitted_us.get());
        sim.metrics().observe(
            crate::metrics::TENANT_JOB_TURNAROUND,
            &[("tenant", &tenant)],
            elapsed_us as f64 / 1e6,
        );
    }

    /// Marks the job FAILED, tears everything down and exits cleanly (so
    /// the K8s Job stops retrying us).
    fn fail_job(self: &Rc<Self>, sim: &mut Sim, reason: &str) {
        sim.metrics().inc(crate::metrics::GUARDIAN_JOBS_FAILED, &[]);
        let me = self.clone();
        let reason = reason.to_owned();
        self.meta
            .clone()
            .advance_status(sim, &self.job, JobStatus::Failed, move |sim, r| {
                if matches!(r, Ok(true)) {
                    me.observe_turnaround(sim);
                }
                sim.record(
                    format!("guardian/{}", me.job),
                    format!("job failed: {reason}"),
                );
                teardown_job(sim, &me.h, &me.job, false);
                me.ctx.exit(sim, 0);
            });
    }

    /// Step 1: delete any partially deployed resources of a previous
    /// attempt, then run the deployment steps.
    fn rollback_then_deploy(self: Rc<Self>, sim: &mut Sim) {
        self.deploy_started_us.set(Some(sim.now().as_micros()));
        teardown_job(sim, &self.h, &self.job, false);
        let me = self.clone();
        sim.schedule_in(self.step_latency(), move |sim| {
            if me.alive() {
                me.step_mark_deploying(sim);
            }
        });
    }

    /// Step 2: record DEPLOYING (with timestamp) in the metadata store.
    fn step_mark_deploying(self: Rc<Self>, sim: &mut Sim) {
        let me = self.clone();
        self.meta
            .clone()
            .advance_status(sim, &self.job, JobStatus::Deploying, move |sim, _r| {
                if !me.alive() {
                    return;
                }
                let me2 = me.clone();
                sim.schedule_in(me.step_latency(), move |sim| {
                    if me2.alive() {
                        me2.step_provision_volume(sim);
                    }
                });
            });
    }

    /// Step 3: provision the shared NFS volume (the persistent volume
    /// claim) and drop the job spec on it for learners and helpers.
    fn step_provision_volume(self: Rc<Self>, sim: &mut Sim) {
        let vol = self.h.nfs.create_volume(paths::volume(&self.job));
        let Some(manifest) = self.manifest_or_abort(sim) else {
            return;
        };
        let staged = self
            .h
            .nfs
            .mount(&vol)
            .and_then(|mount| mount.write_file(paths::NFS_JOBSPEC, manifest.to_json()));
        if let Err(e) = staged {
            // NFS outage window: abort this incarnation instead of
            // panicking. K8s restarts us and the retry is bounded by
            // deploy_max_attempts like every other mid-deploy failure.
            self.ctx
                .record(sim, format!("volume provisioning failed ({e}); aborting"));
            self.ctx.exit(sim, 1);
            return;
        }
        self.ctx.record(sim, "volume provisioned, jobspec staged");
        let me = self.clone();
        sim.schedule_in(self.step_latency(), move |sim| {
            if me.alive() {
                me.step_create_helper(sim);
            }
        });
    }

    /// Step 4: create the helper Deployment (controller, load-data,
    /// log-collector, store-results sharing one pod).
    fn step_create_helper(self: Rc<Self>, sim: &mut Sim) {
        let job = self.job.as_str();
        let cold = self.h.config.helper_cold_start;
        let image = ImageRef::microservice("dlaas/helper");
        let container = |name: &str, behavior: &str| {
            ContainerSpec::new(name, image.clone(), behavior)
                .with_arg(job)
                .with_cold_start(cold)
        };
        let pod = PodSpec::new("unused", container("controller", "controller"))
            .with_container(container("load-data", "load-data"))
            .with_container(container("log-collector", "log-collector"))
            .with_container(container("store-results", "store-results"))
            .with_labels(labels! {"role" => "helper", "job" => job})
            .with_resources(Resources::new(1000, 2048, 0), None)
            .with_volume(paths::volume(&self.job));
        self.h
            .kube
            .create_deployment(sim, &paths::helper_deployment(&self.job), 1, pod);
        self.ctx.record(sim, "helper pod created");
        let me = self.clone();
        sim.schedule_in(self.step_latency(), move |sim| {
            if me.alive() {
                me.step_create_learners(sim);
            }
        });
    }

    /// Step 5: create the learner StatefulSet.
    fn step_create_learners(self: Rc<Self>, sim: &mut Sim) {
        let Some(manifest) = self.manifest_or_abort(sim) else {
            return;
        };
        let job = self.job.as_str();
        let pod = PodSpec::new(
            "unused",
            ContainerSpec::new("learner", framework_image(manifest.framework), "learner")
                .with_arg(job)
                .with_cold_start(SimDuration::from_secs_f64(
                    manifest.framework.cold_start_secs(),
                )),
        )
        .with_labels(labels! {"role" => "learner", "job" => job})
        .with_resources(
            Resources::new(4000, 16384, manifest.gpus_per_learner),
            Some(manifest.gpu_kind),
        )
        .with_volume(paths::volume(&self.job))
        .with_object_store_binding()
        .with_restart_policy(RestartPolicy::Always);
        self.h
            .kube
            .create_statefulset(sim, &paths::learner_set(&self.job), manifest.learners, pod);
        self.ctx.record(sim, "learner statefulset created");
        let me = self.clone();
        sim.schedule_in(self.step_latency(), move |sim| {
            if me.alive() {
                me.step_apply_policies(sim);
            }
        });
    }

    /// Step 6: isolate the learners (multi-tenancy, §II): no traffic to
    /// core services and no traffic to other jobs' learners.
    fn step_apply_policies(self: Rc<Self>, sim: &mut Sim) {
        let job = self.job.as_str();
        let name = paths::network_policy(&self.job);
        self.h.kube.add_network_policy(NetworkPolicy {
            name: name.clone(),
            from: labels! {"role" => "learner", "job" => job},
            to: labels! {"role" => "core"},
            to_services: vec![
                crate::handles::API_SERVICE.into(),
                crate::handles::LCM_SERVICE.into(),
                "mongodb".into(),
                "etcd".into(),
            ],
            exempt_same: None,
        });
        self.h.kube.add_network_policy(NetworkPolicy {
            name,
            from: labels! {"role" => "learner", "job" => job},
            to: labels! {"role" => "learner"},
            to_services: vec![],
            exempt_same: Some("job".into()),
        });
        self.ctx
            .record(sim, "network policies applied; deployment complete");
        let me = self.clone();
        sim.schedule_in(self.step_latency(), move |sim| {
            if me.alive() {
                me.start_monitoring(sim);
            }
        });
    }

    /// Monitoring: etcd watch for fast reaction + periodic poll as the
    /// backstop (and for kill detection via the metadata store).
    fn start_monitoring(self: Rc<Self>, sim: &mut Sim) {
        let prefix = paths::etcd_learners_prefix(&self.job);
        let me = self.clone();
        // dlaas-lint: allow(resource-leak): the watch is scoped to this incarnation's private etcd client, and the guardian's cleanup hook closes that client on exit/kill, cancelling every watch registered on it
        self.etcd.watch_prefix(sim, prefix, move |sim, ev| {
            if !me.alive() {
                return;
            }
            if let dlaas_etcd::KvEvent::Put { key, value, .. } = ev {
                if let Some(ord) = key.rsplit('/').next().and_then(|s| s.parse::<u32>().ok()) {
                    if let Ok(phase) = value.parse::<LearnerPhase>() {
                        me.mon.borrow_mut().learners.insert(ord, phase);
                    }
                }
            }
            let me2 = me.clone();
            sim.defer(move |sim| me2.aggregate(sim));
        });

        let me = self.clone();
        let alive = self.ctx.alive_flag();
        dlaas_sim::every(sim, self.h.config.guardian_poll, move |sim, _n| {
            if !alive.get() || me.mon.borrow().finished {
                return false;
            }
            me.poll(sim);
            true
        });
        self.ctx.record(sim, "monitoring started");
    }

    /// One poll round: refresh the job's etcd snapshot and check for
    /// user-initiated termination.
    fn poll(self: &Rc<Self>, sim: &mut Sim) {
        // etcd watch registries are volatile on the servers; re-register
        // periodically so notifications resume promptly after an etcd
        // node restart (polling already guarantees eventual progress).
        {
            let mut mon = self.mon.borrow_mut();
            mon.poll_round += 1;
            let due = mon.poll_round.is_multiple_of(15);
            drop(mon);
            if due {
                self.etcd.rewatch(sim);
            }
        }
        let me = self.clone();
        let prefix = paths::etcd_job_prefix(&self.job);
        self.etcd.get_prefix(sim, prefix, move |sim, r| {
            if !me.alive() {
                return;
            }
            let Ok(pairs) = r else { return };
            {
                let mut mon = me.mon.borrow_mut();
                for (key, value) in &pairs {
                    if let Some(ord) = key
                        .strip_prefix(&paths::etcd_learners_prefix(&me.job))
                        .and_then(|s| s.parse::<u32>().ok())
                    {
                        if let Ok(phase) = value.parse::<LearnerPhase>() {
                            mon.learners.insert(ord, phase);
                        }
                    } else if *key == paths::etcd_store(&me.job) {
                        mon.store = Some(value.clone());
                    } else if *key == paths::etcd_progress(&me.job) {
                        mon.progress = value.parse().unwrap_or(mon.progress);
                    } else if *key == paths::etcd_restarts(&me.job) {
                        mon.restarts = value.parse().unwrap_or(mon.restarts);
                    } else if *key == paths::etcd_throughput(&me.job) {
                        mon.throughput = value.parse().ok();
                    }
                }
            }
            me.push_progress(sim);
            me.aggregate(sim);
        });

        // Kill detection: the LCM marks the job KILLED and tears down; a
        // monitoring Guardian must notice and exit.
        let me = self.clone();
        let filter = Filter::eq("_id", self.job.as_str());
        self.meta
            .clone()
            .find_one(sim, JOBS, filter, move |sim, r| {
                if !me.alive() || me.mon.borrow().finished {
                    return;
                }
                if let Ok(Some(doc)) = r {
                    let status: Option<JobStatus> = doc
                        .path("status")
                        .and_then(Value::as_str)
                        .and_then(|s| s.parse().ok());
                    if status.is_some_and(super::job::JobStatus::is_terminal) {
                        me.mon.borrow_mut().finished = true;
                        me.ctx
                            .record(sim, "job reached terminal state externally; exiting");
                        me.ctx.exit(sim, 0);
                    }
                }
            });
    }

    /// Mirrors progress/restart counters into the metadata store so users
    /// can see them through the API.
    fn push_progress(self: &Rc<Self>, sim: &mut Sim) {
        let (progress, restarts, learners_doc, dirty) = {
            let mut mon = self.mon.borrow_mut();
            // Mirror the per-learner phases so users can inspect each
            // learner through the API while the job runs.
            let mut learners_doc = std::collections::BTreeMap::new();
            for (ord, phase) in &mon.learners {
                learners_doc.insert(ord.to_string(), Value::from(phase.to_string()));
            }
            let learners_repr = format!("{learners_doc:?}");
            let dirty = mon.progress != mon.last_progress_written
                || mon.restarts != mon.last_restarts_written
                || learners_repr != mon.last_learners_written;
            mon.last_progress_written = mon.progress;
            mon.last_restarts_written = mon.restarts;
            mon.last_learners_written = learners_repr;
            (mon.progress, mon.restarts, learners_doc, dirty)
        };
        if !dirty {
            return;
        }
        let filter = Filter::eq("_id", self.job.as_str());
        let update = Update::Many(vec![
            Update::set("iteration", progress as i64),
            Update::set("learner_restarts", restarts as i64),
            Update::set("learners", Value::Obj(learners_doc)),
        ]);
        self.meta
            .clone()
            .update_one(sim, JOBS, filter, update, |_sim, _r| {});
    }

    /// The aggregation rules of §III-f: per-learner statuses in etcd are
    /// folded into the single job status in MongoDB.
    fn aggregate(self: &Rc<Self>, sim: &mut Sim) {
        let manifest_learners = self
            .manifest
            .borrow()
            .as_ref()
            .map(|m| m.learners)
            .unwrap_or(0);
        enum Act {
            None,
            Fail,
            Processing,
            Storing,
            Complete(Option<f64>),
        }
        let act = {
            let mut mon = self.mon.borrow_mut();
            if mon.finished {
                Act::None
            } else if mon
                .learners
                .values()
                .any(super::job::LearnerPhase::is_failed)
            {
                mon.finished = true;
                Act::Fail
            } else if mon.store.as_deref() == Some("done") {
                mon.finished = true;
                Act::Complete(mon.throughput)
            } else if mon.learners.len() == manifest_learners as usize
                && mon
                    .learners
                    .values()
                    .all(super::job::LearnerPhase::is_completed)
            {
                if mon.moved_storing {
                    Act::None
                } else {
                    mon.moved_storing = true;
                    Act::Storing
                }
            } else if mon
                .learners
                .values()
                .any(|p| matches!(p, LearnerPhase::Processing { .. }))
                && !mon.moved_processing
            {
                mon.moved_processing = true;
                Act::Processing
            } else {
                Act::None
            }
        };
        match act {
            Act::None => {}
            Act::Fail => {
                self.ctx.record(sim, "a learner failed permanently");
                self.fail_job(sim, "learner failure budget exhausted");
            }
            Act::Processing => {
                self.ctx.record(sim, "all set: job is PROCESSING");
                if let Some(started_us) = self.deploy_started_us.take() {
                    let elapsed = sim.now().as_micros().saturating_sub(started_us);
                    sim.metrics().observe_duration_us(
                        crate::metrics::GUARDIAN_DEPLOY_SECONDS,
                        &[],
                        elapsed,
                    );
                }
                self.meta.clone().advance_status(
                    sim,
                    &self.job,
                    JobStatus::Processing,
                    |_sim, _r| {},
                );
            }
            Act::Storing => {
                self.ctx
                    .record(sim, "learners done; starting result storage");
                let me = self.clone();
                self.meta.clone().advance_status(
                    sim,
                    &self.job,
                    JobStatus::Storing,
                    move |sim, _r| {
                        // Expect-absent CAS: never clobber an existing
                        // "go"/"done" written by a predecessor incarnation.
                        me.etcd.cas(
                            sim,
                            paths::etcd_store(&me.job),
                            None,
                            Some("go".into()),
                            |_sim, _r| {},
                        );
                    },
                );
            }
            Act::Complete(throughput) => {
                self.ctx.record(sim, "results stored; completing job");
                sim.metrics()
                    .inc(crate::metrics::GUARDIAN_JOBS_COMPLETED, &[]);
                let me = self.clone();
                let filter = Filter::eq("_id", self.job.as_str());
                let update = Update::set(
                    "images_per_sec",
                    throughput.map(Value::from).unwrap_or(Value::Null),
                );
                self.meta
                    .clone()
                    .update_one(sim, JOBS, filter, update, move |sim, _r| {
                        let me2 = me.clone();
                        me.meta.clone().advance_status(
                            sim,
                            &me.job,
                            JobStatus::Completed,
                            move |sim, r| {
                                if matches!(r, Ok(true)) {
                                    me2.observe_turnaround(sim);
                                }
                                teardown_job(sim, &me2.h, &me2.job, false);
                                me2.ctx.exit(sim, 0);
                            },
                        );
                    });
            }
        }
    }
}
