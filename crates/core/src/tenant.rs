//! Multi-tenancy: tenants, API keys and GPU quotas.
//!
//! DLaaS is multi-tenant: the API service "handles all the incoming API
//! requests including load balancing, metering, and access management"
//! (§III-c). Tenants are stored in the metadata store so every API
//! replica — including freshly restarted ones — sees the same registry.

use dlaas_docstore::{obj, Value};

/// One tenant of the platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// Tenant id (organization).
    pub id: String,
    /// Secret used on every API call.
    pub api_key: String,
    /// Maximum GPUs the tenant may hold concurrently (0 = unlimited).
    pub max_gpus: u32,
}

impl Tenant {
    /// Creates a tenant.
    pub fn new(id: impl Into<String>, api_key: impl Into<String>, max_gpus: u32) -> Self {
        Tenant {
            id: id.into(),
            api_key: api_key.into(),
            max_gpus,
        }
    }

    /// The document stored in the tenants collection.
    pub fn to_document(&self) -> Value {
        obj! {
            "_id" => self.id.clone(),
            "api_key" => self.api_key.clone(),
            "max_gpus" => self.max_gpus,
        }
    }

    /// Parses a stored tenant document, if well-formed.
    pub fn from_document(doc: &Value) -> Option<Tenant> {
        Some(Tenant {
            id: doc.path("_id")?.as_str()?.to_owned(),
            api_key: doc.path("api_key")?.as_str()?.to_owned(),
            max_gpus: doc.path("max_gpus")?.as_i64()? as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_roundtrip() {
        let t = Tenant::new("acme", "key-123", 16);
        let doc = t.to_document();
        assert_eq!(Tenant::from_document(&doc), Some(t));
    }

    #[test]
    fn malformed_document_rejected() {
        assert_eq!(Tenant::from_document(&obj! {"_id" => "x"}), None);
        assert_eq!(Tenant::from_document(&Value::Null), None);
    }
}
