//! Multi-tenancy: tenants, API keys and GPU quotas.
//!
//! DLaaS is multi-tenant: the API service "handles all the incoming API
//! requests including load balancing, metering, and access management"
//! (§III-c). Tenants are stored in the metadata store so every API
//! replica — including freshly restarted ones — sees the same registry.

use dlaas_docstore::{obj, Value};

/// One tenant of the platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// Tenant id (organization).
    pub id: String,
    /// Secret used on every API call.
    pub api_key: String,
    /// Maximum GPUs the tenant may hold concurrently (0 = unlimited).
    pub max_gpus: u32,
    /// Fair-share weight for over-quota admission: a tenant with weight 4
    /// gets 4× the admission share of a weight-1 tenant when both have
    /// queued jobs. Never 0 (clamped to 1 on parse).
    pub weight: u32,
}

impl Tenant {
    /// Creates a tenant with the default fair-share weight of 1.
    pub fn new(id: impl Into<String>, api_key: impl Into<String>, max_gpus: u32) -> Self {
        Tenant {
            id: id.into(),
            api_key: api_key.into(),
            max_gpus,
            weight: 1,
        }
    }

    /// Sets the fair-share weight (clamped to at least 1).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// The document stored in the tenants collection.
    pub fn to_document(&self) -> Value {
        obj! {
            "_id" => self.id.clone(),
            "api_key" => self.api_key.clone(),
            "max_gpus" => self.max_gpus,
            "weight" => self.weight,
        }
    }

    /// Parses a stored tenant document, if well-formed. Documents written
    /// before fair-share weights existed carry no `weight` field; they
    /// parse as weight 1.
    pub fn from_document(doc: &Value) -> Option<Tenant> {
        let weight = match doc.path("weight") {
            Some(v) => (v.as_i64()? as u32).max(1),
            None => 1,
        };
        Some(Tenant {
            id: doc.path("_id")?.as_str()?.to_owned(),
            api_key: doc.path("api_key")?.as_str()?.to_owned(),
            max_gpus: doc.path("max_gpus")?.as_i64()? as u32,
            weight,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_roundtrip() {
        let t = Tenant::new("acme", "key-123", 16).with_weight(4);
        let doc = t.to_document();
        assert_eq!(Tenant::from_document(&doc), Some(t));
    }

    #[test]
    fn weight_defaults_and_clamps() {
        // Pre-weight documents parse as weight 1.
        let legacy = obj! {"_id" => "x", "api_key" => "k", "max_gpus" => 8};
        assert_eq!(Tenant::from_document(&legacy).unwrap().weight, 1);
        // A stored weight of 0 would divide the fair share by zero; clamp.
        let zero = obj! {"_id" => "x", "api_key" => "k", "max_gpus" => 8, "weight" => 0};
        assert_eq!(Tenant::from_document(&zero).unwrap().weight, 1);
        assert_eq!(Tenant::new("a", "k", 4).with_weight(0).weight, 1);
    }

    #[test]
    fn malformed_document_rejected() {
        assert_eq!(Tenant::from_document(&obj! {"_id" => "x"}), None);
        assert_eq!(Tenant::from_document(&Value::Null), None);
    }
}
