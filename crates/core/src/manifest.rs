//! The training-job manifest.
//!
//! "Job parameters, including the source of training data, credentials to
//! access training data, framework, number of learners, location where
//! results and logs should be stored, learning rate, etc., are specified
//! using a manifest file." (paper §III-a)

use dlaas_docstore::{obj, Value};
use dlaas_gpu::{DlModel, Framework, GpuKind};

/// Errors found while validating a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError(pub String);

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid manifest: {}", self.0)
    }
}

impl std::error::Error for ManifestError {}

/// A validated training-job manifest.
///
/// # Examples
///
/// ```
/// use dlaas_core::TrainingManifest;
/// use dlaas_gpu::{DlModel, Framework, GpuKind};
///
/// let m = TrainingManifest::builder("mnist-vgg")
///     .framework(Framework::Caffe)
///     .model(DlModel::Vgg16)
///     .gpus(GpuKind::K80, 2)
///     .learners(1)
///     .data("training-data", "imagenet/", 50_000_000_000)
///     .results("results")
///     .iterations(10_000)
///     .checkpoint_every(1_000)
///     .build()?;
/// assert_eq!(m.learners, 1);
/// # Ok::<(), dlaas_core::ManifestError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingManifest {
    /// Human-readable job name.
    pub name: String,
    /// DL framework to run.
    pub framework: Framework,
    /// Network architecture (stands in for the user's model definition).
    pub model: DlModel,
    /// GPU type requested.
    pub gpu_kind: GpuKind,
    /// GPUs per learner.
    pub gpus_per_learner: u32,
    /// Number of learner processes.
    pub learners: u32,
    /// Bucket holding training data.
    pub data_bucket: String,
    /// Key prefix of the training data.
    pub data_prefix: String,
    /// Total size of the training data in bytes.
    pub data_bytes: u64,
    /// Bucket for results, checkpoints and logs.
    pub results_bucket: String,
    /// Total training iterations (global steps).
    pub iterations: u64,
    /// Checkpoint every this many iterations (0 = no checkpoints).
    pub checkpoint_every: u64,
    /// Per-GPU minibatch (0 = the model's default).
    pub batch_per_gpu: u32,
    /// Learning rate (carried, not interpreted — the simulation does not
    /// model convergence).
    pub learning_rate: f64,
}

impl TrainingManifest {
    /// Starts building a manifest.
    pub fn builder(name: impl Into<String>) -> TrainingManifestBuilder {
        TrainingManifestBuilder {
            name: name.into(),
            framework: Framework::TensorFlow,
            model: DlModel::Resnet50,
            gpu_kind: GpuKind::K80,
            gpus_per_learner: 1,
            learners: 1,
            data_bucket: String::new(),
            data_prefix: String::new(),
            data_bytes: 0,
            results_bucket: String::new(),
            iterations: 1000,
            checkpoint_every: 0,
            batch_per_gpu: 0,
            learning_rate: 0.01,
        }
    }

    /// Effective per-GPU batch size.
    pub fn effective_batch(&self) -> u32 {
        if self.batch_per_gpu == 0 {
            self.model.batch_per_gpu()
        } else {
            self.batch_per_gpu
        }
    }

    /// Total GPUs requested by the job.
    pub fn total_gpus(&self) -> u32 {
        self.gpus_per_learner * self.learners
    }

    /// Re-validates the manifest (public fields may have been edited after
    /// the builder ran; the API service re-checks at submission).
    ///
    /// # Errors
    ///
    /// [`ManifestError`] describing the first invalid field.
    pub fn validate(&self) -> Result<(), ManifestError> {
        TrainingManifest::builder(self.name.clone())
            .framework(self.framework)
            .model(self.model)
            .gpus(self.gpu_kind, self.gpus_per_learner)
            .learners(self.learners)
            .data(
                self.data_bucket.clone(),
                self.data_prefix.clone(),
                self.data_bytes,
            )
            .results(self.results_bucket.clone())
            .iterations(self.iterations)
            .checkpoint_every(self.checkpoint_every)
            .batch_per_gpu(self.batch_per_gpu)
            .learning_rate(self.learning_rate)
            .build()
            .map(|_| ())
    }

    /// Serializes to the JSON the platform stores on the job's volume.
    pub fn to_json(&self) -> String {
        obj! {
            "name" => self.name.clone(),
            "framework" => self.framework.to_string(),
            "model" => self.model.to_string(),
            "gpu_kind" => self.gpu_kind.to_string(),
            "gpus_per_learner" => self.gpus_per_learner,
            "learners" => self.learners,
            "data_bucket" => self.data_bucket.clone(),
            "data_prefix" => self.data_prefix.clone(),
            "data_bytes" => self.data_bytes,
            "results_bucket" => self.results_bucket.clone(),
            "iterations" => self.iterations,
            "checkpoint_every" => self.checkpoint_every,
            "batch_per_gpu" => self.batch_per_gpu,
            "learning_rate" => self.learning_rate,
        }
        .to_json()
    }

    /// Parses a stored manifest.
    ///
    /// # Errors
    ///
    /// [`ManifestError`] when the JSON is malformed.
    pub fn from_json(s: &str) -> Result<Self, ManifestError> {
        let v = Value::parse_json(s).map_err(|e| ManifestError(e.to_string()))?;
        let missing = |field: &str| ManifestError(format!("missing or ill-typed field: {field}"));
        let str_field = |field: &str| -> Result<String, ManifestError> {
            Ok(v.path(field)
                .and_then(Value::as_str)
                .ok_or_else(|| missing(field))?
                .to_owned())
        };
        let int_field = |field: &str| -> Result<i64, ManifestError> {
            v.path(field)
                .and_then(Value::as_i64)
                .ok_or_else(|| missing(field))
        };
        Ok(TrainingManifest {
            name: str_field("name")?,
            framework: str_field("framework")?
                .parse()
                .map_err(|_| missing("framework"))?,
            model: str_field("model")?.parse().map_err(|_| missing("model"))?,
            gpu_kind: str_field("gpu_kind")?
                .parse()
                .map_err(|_| missing("gpu_kind"))?,
            gpus_per_learner: int_field("gpus_per_learner")? as u32,
            learners: int_field("learners")? as u32,
            data_bucket: str_field("data_bucket")?,
            data_prefix: str_field("data_prefix")?,
            data_bytes: int_field("data_bytes")? as u64,
            results_bucket: str_field("results_bucket")?,
            iterations: int_field("iterations")? as u64,
            checkpoint_every: int_field("checkpoint_every")? as u64,
            batch_per_gpu: int_field("batch_per_gpu")? as u32,
            learning_rate: v
                .path("learning_rate")
                .and_then(Value::as_f64)
                .ok_or_else(|| missing("learning_rate"))?,
        })
    }
}

/// Builder for [`TrainingManifest`].
#[derive(Debug, Clone)]
pub struct TrainingManifestBuilder {
    name: String,
    framework: Framework,
    model: DlModel,
    gpu_kind: GpuKind,
    gpus_per_learner: u32,
    learners: u32,
    data_bucket: String,
    data_prefix: String,
    data_bytes: u64,
    results_bucket: String,
    iterations: u64,
    checkpoint_every: u64,
    batch_per_gpu: u32,
    learning_rate: f64,
}

impl TrainingManifestBuilder {
    /// Sets the framework.
    pub fn framework(mut self, f: Framework) -> Self {
        self.framework = f;
        self
    }

    /// Sets the model.
    pub fn model(mut self, m: DlModel) -> Self {
        self.model = m;
        self
    }

    /// Sets GPU kind and count per learner.
    pub fn gpus(mut self, kind: GpuKind, per_learner: u32) -> Self {
        self.gpu_kind = kind;
        self.gpus_per_learner = per_learner;
        self
    }

    /// Sets the learner count.
    pub fn learners(mut self, n: u32) -> Self {
        self.learners = n;
        self
    }

    /// Sets the training-data source.
    pub fn data(
        mut self,
        bucket: impl Into<String>,
        prefix: impl Into<String>,
        bytes: u64,
    ) -> Self {
        self.data_bucket = bucket.into();
        self.data_prefix = prefix.into();
        self.data_bytes = bytes;
        self
    }

    /// Sets the results bucket.
    pub fn results(mut self, bucket: impl Into<String>) -> Self {
        self.results_bucket = bucket.into();
        self
    }

    /// Sets total iterations.
    pub fn iterations(mut self, n: u64) -> Self {
        self.iterations = n;
        self
    }

    /// Sets the checkpoint interval (iterations; 0 disables).
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = n;
        self
    }

    /// Overrides the per-GPU batch.
    pub fn batch_per_gpu(mut self, b: u32) -> Self {
        self.batch_per_gpu = b;
        self
    }

    /// Sets the learning rate.
    pub fn learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Validates and builds the manifest.
    ///
    /// # Errors
    ///
    /// [`ManifestError`] describing the first invalid field.
    pub fn build(self) -> Result<TrainingManifest, ManifestError> {
        if self.name.is_empty() {
            return Err(ManifestError("name must not be empty".into()));
        }
        if self.learners == 0 {
            return Err(ManifestError("learners must be at least 1".into()));
        }
        if self.gpus_per_learner == 0 {
            return Err(ManifestError("gpus_per_learner must be at least 1".into()));
        }
        if self.iterations == 0 {
            return Err(ManifestError("iterations must be positive".into()));
        }
        if self.data_bucket.is_empty() {
            return Err(ManifestError("data bucket is required".into()));
        }
        if self.results_bucket.is_empty() {
            return Err(ManifestError("results bucket is required".into()));
        }
        if self.data_bytes == 0 {
            return Err(ManifestError("data_bytes must be positive".into()));
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(ManifestError("learning_rate must be positive".into()));
        }
        Ok(TrainingManifest {
            name: self.name,
            framework: self.framework,
            model: self.model,
            gpu_kind: self.gpu_kind,
            gpus_per_learner: self.gpus_per_learner,
            learners: self.learners,
            data_bucket: self.data_bucket,
            data_prefix: self.data_prefix,
            data_bytes: self.data_bytes,
            results_bucket: self.results_bucket,
            iterations: self.iterations,
            checkpoint_every: self.checkpoint_every,
            batch_per_gpu: self.batch_per_gpu,
            learning_rate: self.learning_rate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> TrainingManifestBuilder {
        TrainingManifest::builder("job")
            .data("data", "imagenet/", 1_000_000)
            .results("results")
    }

    #[test]
    fn builder_produces_valid_manifest() {
        let m = valid()
            .framework(Framework::Caffe)
            .model(DlModel::Vgg16)
            .gpus(GpuKind::P100Pcie, 2)
            .learners(4)
            .iterations(5000)
            .checkpoint_every(500)
            .batch_per_gpu(16)
            .learning_rate(0.1)
            .build()
            .unwrap();
        assert_eq!(m.total_gpus(), 8);
        assert_eq!(m.effective_batch(), 16);
        assert_eq!(m.framework, Framework::Caffe);
    }

    #[test]
    fn default_batch_comes_from_model() {
        let m = valid().model(DlModel::Vgg16).build().unwrap();
        assert_eq!(m.effective_batch(), DlModel::Vgg16.batch_per_gpu());
    }

    #[test]
    fn validation_rejects_bad_fields() {
        assert!(TrainingManifest::builder("").build().is_err());
        assert!(valid().learners(0).build().is_err());
        assert!(valid().gpus(GpuKind::K80, 0).build().is_err());
        assert!(valid().iterations(0).build().is_err());
        assert!(valid().learning_rate(-1.0).build().is_err());
        assert!(valid().learning_rate(f64::NAN).build().is_err());
        assert!(
            TrainingManifest::builder("x").results("r").build().is_err(),
            "missing data bucket"
        );
        assert!(
            TrainingManifest::builder("x")
                .data("d", "", 10)
                .build()
                .is_err(),
            "missing results bucket"
        );
        assert!(valid().data("d", "", 0).build().is_err(), "zero data bytes");
    }

    #[test]
    fn json_roundtrip() {
        let m = valid().learners(2).build().unwrap();
        let json = m.to_json();
        let back = TrainingManifest::from_json(&json).unwrap();
        assert_eq!(m, back);
        assert!(TrainingManifest::from_json("{not json").is_err());
    }
}
