//! Naming conventions shared by the platform's components: Kubernetes
//! resource names, etcd key layout, NFS file layout and object-store keys.
//!
//! Centralized here because the Guardian's rollback (§III-d) works by
//! deleting "everything named after job X" — the names must line up
//! across components and across Guardian incarnations.

use crate::job::JobId;

/// NFS volume for a job.
pub fn volume(job: &JobId) -> String {
    format!("vol-{job}")
}

/// Helper Deployment name (`-0` suffix for its single pod).
pub fn helper_deployment(job: &JobId) -> String {
    format!("helper-{job}")
}

/// The helper pod's name.
pub fn helper_pod(job: &JobId) -> String {
    format!("helper-{job}-0")
}

/// Learner StatefulSet name.
pub fn learner_set(job: &JobId) -> String {
    format!("learner-{job}")
}

/// Learner pod name for an ordinal.
pub fn learner_pod(job: &JobId, ordinal: u32) -> String {
    format!("learner-{job}-{ordinal}")
}

/// Guardian Kubernetes Job (and its pod) name.
pub fn guardian_job(job: &JobId) -> String {
    format!("guardian-{job}")
}

/// Per-job network policy name.
pub fn network_policy(job: &JobId) -> String {
    format!("netpol-{job}")
}

/// etcd prefix for everything about a job.
pub fn etcd_job_prefix(job: &JobId) -> String {
    format!("jobs/{job}/")
}

/// etcd prefix for per-learner statuses.
pub fn etcd_learners_prefix(job: &JobId) -> String {
    format!("jobs/{job}/learners/")
}

/// etcd key for one learner's status.
pub fn etcd_learner(job: &JobId, ordinal: u32) -> String {
    format!("jobs/{job}/learners/{ordinal}")
}

/// etcd key for aggregate training progress.
pub fn etcd_progress(job: &JobId) -> String {
    format!("jobs/{job}/progress")
}

/// etcd key for cumulative learner restarts.
pub fn etcd_restarts(job: &JobId) -> String {
    format!("jobs/{job}/restarts")
}

/// etcd key coordinating the store-results phase (`"go"` / `"done"`).
pub fn etcd_store(job: &JobId) -> String {
    format!("jobs/{job}/store")
}

/// etcd key marking training data availability.
pub fn etcd_data(job: &JobId) -> String {
    format!("jobs/{job}/data")
}

/// etcd key for the measured throughput (written by the controller from
/// the learners' final reports).
pub fn etcd_throughput(job: &JobId) -> String {
    format!("jobs/{job}/throughput")
}

/// etcd prefix under which the LCM replicas' shard-ownership keys live.
pub const LCM_SHARDS_PREFIX: &str = "lcm/shards/";

/// etcd key naming the owner of LCM shard `shard` (value = replica pod
/// name, attached to that replica's lease so it vanishes on expiry).
pub fn lcm_shard_owner(shard: u32) -> String {
    format!("{LCM_SHARDS_PREFIX}{shard:03}")
}

/// The shard a job hashes into (FNV-1a over the job id, mod `shards`).
/// Pure and stable: every LCM replica, the fault matrix, and the
/// invariant checker must agree on the partition.
pub fn job_shard(job: &JobId, shards: u32) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in job.as_str().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % u64::from(shards.max(1))) as u32
}

/// NFS: the job spec the Guardian drops for learners & helpers.
pub const NFS_JOBSPEC: &str = "control/jobspec.json";
/// NFS: marker that the training data is staged.
pub const NFS_DATA_LOADED: &str = "data/loaded";
/// NFS: controller tells store-results to begin.
pub const NFS_STORE_GO: &str = "control/store-go";
/// NFS: store-results reports completion.
pub const NFS_STORE_DONE: &str = "control/store-done";

/// NFS: a learner's status file.
pub fn nfs_learner_status(ordinal: u32) -> String {
    format!("learner-{ordinal}/status")
}

/// NFS: a learner's exit-status file ("exit status redirected to a file",
/// §III-e).
pub fn nfs_learner_exit(ordinal: u32) -> String {
    format!("learner-{ordinal}/exit-status")
}

/// NFS: a learner's restart counter.
pub fn nfs_learner_restarts(ordinal: u32) -> String {
    format!("learner-{ordinal}/restarts")
}

/// NFS: a learner's training log.
pub fn nfs_learner_log(ordinal: u32) -> String {
    format!("learner-{ordinal}/train.log")
}

/// NFS: a learner's measured-throughput report.
pub fn nfs_learner_throughput(ordinal: u32) -> String {
    format!("learner-{ordinal}/images-per-sec")
}

/// Object store: uploaded log for a learner (in the results bucket).
pub fn obj_log(job: &JobId, ordinal: u32) -> String {
    format!("logs/{job}/learner-{ordinal}.log")
}

/// Object store: checkpoint metadata (iteration number, text).
pub fn obj_ckpt_meta(job: &JobId) -> String {
    format!("ckpt/{job}/meta")
}

/// Object store: checkpoint weights (synthetic bytes).
pub fn obj_ckpt_data(job: &JobId) -> String {
    format!("ckpt/{job}/data")
}

/// Object store: final trained model.
pub fn obj_result_model(job: &JobId) -> String {
    format!("results/{job}/model")
}

/// The key of the staged training-data object within the data bucket.
pub fn obj_dataset(prefix: &str) -> String {
    format!("{prefix}data")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_embed_the_job_id() {
        let j = JobId::new("job-7");
        for name in [
            volume(&j),
            helper_deployment(&j),
            helper_pod(&j),
            learner_set(&j),
            learner_pod(&j, 2),
            guardian_job(&j),
            network_policy(&j),
            etcd_job_prefix(&j),
            etcd_learner(&j, 0),
            etcd_progress(&j),
            etcd_store(&j),
            obj_log(&j, 1),
            obj_ckpt_meta(&j),
            obj_result_model(&j),
        ] {
            assert!(name.contains("job-7"), "{name}");
        }
    }

    #[test]
    fn learner_keys_are_under_the_learners_prefix() {
        let j = JobId::new("x");
        assert!(etcd_learner(&j, 3).starts_with(&etcd_learners_prefix(&j)));
        assert!(etcd_learners_prefix(&j).starts_with(&etcd_job_prefix(&j)));
        assert!(etcd_progress(&j).starts_with(&etcd_job_prefix(&j)));
    }

    #[test]
    fn helper_pod_is_first_replica_of_its_deployment() {
        let j = JobId::new("y");
        assert_eq!(helper_pod(&j), format!("{}-0", helper_deployment(&j)));
        assert_eq!(learner_pod(&j, 4), format!("{}-4", learner_set(&j)));
    }

    #[test]
    fn dataset_key() {
        assert_eq!(obj_dataset("imagenet/"), "imagenet/data");
        assert_eq!(obj_dataset(""), "data");
    }

    #[test]
    fn shard_owner_keys_sort_with_the_prefix() {
        assert_eq!(lcm_shard_owner(3), "lcm/shards/003");
        assert!(lcm_shard_owner(12).starts_with(LCM_SHARDS_PREFIX));
        // Zero-padded so key order equals shard order up to 999 shards.
        assert!(lcm_shard_owner(2) < lcm_shard_owner(10));
    }

    #[test]
    fn job_shard_is_stable_and_in_range() {
        let j = JobId::new("job-42");
        let s = job_shard(&j, 8);
        assert!(s < 8);
        assert_eq!(s, job_shard(&j, 8), "hash must be deterministic");
        assert_eq!(job_shard(&j, 1), 0);
        // Different jobs spread across shards (not all in one bucket).
        let hit: std::collections::BTreeSet<u32> = (0..64)
            .map(|i| job_shard(&JobId::new(format!("job-{i}")), 8))
            .collect();
        assert!(hit.len() > 4, "FNV-1a should spread 64 ids over 8 shards");
    }
}
