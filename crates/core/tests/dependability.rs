//! The dependability test suite: every §II guarantee, exercised by
//! crashing the component it protects against.

use std::cell::RefCell;
use std::rc::Rc;

use dlaas_core::{paths, DlaasPlatform, JobId, JobStatus, Tenant, TrainingManifest};
use dlaas_gpu::{DlModel, Framework, GpuKind};
use dlaas_kube::PodPhase;
use dlaas_sim::{Sim, SimDuration};

const KEY: &str = "key-acme";

fn boot(seed: u64) -> (Sim, DlaasPlatform) {
    let mut sim = Sim::new(seed);
    sim.trace_mut().set_enabled(false);
    let platform = DlaasPlatform::bootstrapped(&mut sim);
    platform
        .add_tenant(&Tenant::new("acme", KEY, 64))
        .expect("bootstrap tenant insert");
    platform.seed_dataset("acme-data", "d/", 2_000_000_000);
    platform.create_bucket("acme-results");
    (sim, platform)
}

fn manifest(name: &str, iters: u64, ckpt: u64) -> TrainingManifest {
    TrainingManifest::builder(name)
        .framework(Framework::TensorFlow)
        .model(DlModel::Resnet50)
        .gpus(GpuKind::K80, 1)
        .learners(1)
        .data("acme-data", "d/", 2_000_000_000)
        .results("acme-results")
        .iterations(iters)
        .checkpoint_every(ckpt)
        .build()
        .unwrap()
}

fn submit(sim: &mut Sim, platform: &DlaasPlatform, m: TrainingManifest) -> JobId {
    let client = platform.client("alice", KEY);
    let got: Rc<RefCell<Option<Result<JobId, _>>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    client.submit(sim, m, move |_s, r| *g.borrow_mut() = Some(r));
    sim.run_until_pred(|_| got.borrow().is_some());
    let r = got.borrow().clone().unwrap();
    r.expect("submission accepted")
}

/// §III-c: "submitted jobs are never lost" — the ACK means the job is on
/// disk; even if every core service and the metadata store crash right
/// after, the job is eventually deployed and completed.
#[test]
fn acknowledged_submission_survives_total_core_crash() {
    let (mut sim, platform) = boot(11);
    let job = submit(&mut sim, &platform, manifest("survivor", 400, 0));

    // Nuke everything the instant the ACK lands.
    let kube = platform.kube().clone();
    kube.crash_pod(&mut sim, "dlaas-api-0");
    kube.crash_pod(&mut sim, "dlaas-api-1");
    kube.crash_pod(&mut sim, "dlaas-lcm-0");
    platform.crash_mongo(&mut sim, Some(SimDuration::from_secs(4)));

    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(4),
    );
    assert_eq!(end, Some(JobStatus::Completed), "accepted job was lost");
}

/// §III-d: a Guardian crash mid-deployment triggers rollback and a fresh
/// attempt; the job still completes and resources are exactly right.
#[test]
fn guardian_crash_mid_deploy_rolls_back_and_completes() {
    let (mut sim, platform) = boot(12);
    let job = submit(&mut sim, &platform, manifest("rollback", 400, 0));

    // Crash the Guardian as soon as the job is DEPLOYING (mid-steps).
    let s = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Deploying,
        SimDuration::from_mins(10),
    );
    assert_eq!(s, Some(JobStatus::Deploying));
    let gpod = paths::guardian_job(&job);
    assert!(
        platform.kube().crash_pod(&mut sim, &gpod),
        "guardian must be running"
    );

    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(4),
    );
    assert_eq!(end, Some(JobStatus::Completed));

    // The K8s Job restarted the Guardian at least once.
    assert!(platform.kube().pod_restarts(&gpod).unwrap_or(0) >= 1);
    // Deployment was retried (attempts counter in the job document).
    let doc = platform.job_document(&job).unwrap();
    let attempts = doc
        .path("attempts")
        .and_then(dlaas_docstore::Value::as_i64)
        .unwrap();
    assert!(
        attempts >= 2,
        "rollback must burn a deploy attempt, got {attempts}"
    );
}

/// §III-d: persistent deployment failure → after the configured number of
/// attempts the job is marked FAILED, and **atomically**: no partial
/// resources survive.
#[test]
fn persistent_guardian_failure_marks_job_failed_atomically() {
    let (mut sim, platform) = boot(13);
    let job = submit(&mut sim, &platform, manifest("doomed", 400, 0));
    let gpod = paths::guardian_job(&job);

    // Kill the Guardian every time it shows up, until the platform gives up.
    let kube = platform.kube().clone();
    let deadline = sim.now() + SimDuration::from_hours(6);
    loop {
        match platform.job_status(&job) {
            Some(s) if s.is_terminal() => break,
            _ => {}
        }
        assert!(sim.now() < deadline, "platform never gave up");
        if kube.pod_phase(&gpod) == Some(PodPhase::Running) {
            kube.crash_pod(&mut sim, &gpod);
        }
        sim.run_for(SimDuration::from_secs(2));
    }
    assert_eq!(platform.job_status(&job), Some(JobStatus::Failed));

    // Atomicity: nothing of the job remains.
    sim.run_for(SimDuration::from_mins(2));
    assert!(
        platform
            .kube()
            .pods_matching(&dlaas_kube::labels! {"job" => job.as_str(), "role" => "learner"})
            .is_empty(),
        "partial deployment leaked learners"
    );
    assert!(platform.nfs().find_volume(&paths::volume(&job)).is_none());
}

/// §III-g/h: a crashed learner is restarted by K8s and resumes from the
/// latest checkpoint; the user sees the restart count.
#[test]
fn learner_crash_resumes_from_checkpoint() {
    let (mut sim, platform) = boot(14);
    let job = submit(&mut sim, &platform, manifest("resume", 1500, 200));
    platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Processing,
        SimDuration::from_mins(30),
    );

    // Let it train past a few checkpoints, then crash the learner.
    sim.run_for(SimDuration::from_mins(10));
    let lpod = paths::learner_pod(&job, 0);
    assert!(platform.kube().crash_pod(&mut sim, &lpod));

    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(6),
    );
    assert_eq!(end, Some(JobStatus::Completed));

    let info = platform.job_info(&job).unwrap();
    assert!(
        info.learner_restarts >= 1,
        "users must be notified of restarts (§II), got {}",
        info.learner_restarts
    );
    // A checkpoint exists in the object store.
    assert!(platform
        .objstore()
        .head("acme-results", &paths::obj_ckpt_meta(&job))
        .is_ok());
    // The learner's log shows the restart + resume.
    let mongo_doc = platform.job_document(&job).unwrap();
    drop(mongo_doc);
    let log = platform
        .objstore()
        .list("acme-results", &format!("logs/{job}/"));
    assert!(!log.is_empty());
}

/// Without checkpoints the learner restarts from iteration 0 — slower,
/// but the job still completes (§III-g trade-off).
#[test]
fn learner_crash_without_checkpoints_still_completes() {
    let (mut sim, platform) = boot(15);
    let job = submit(&mut sim, &platform, manifest("restart0", 600, 0));
    platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Processing,
        SimDuration::from_mins(30),
    );
    sim.run_for(SimDuration::from_mins(5));
    platform
        .kube()
        .crash_pod(&mut sim, &paths::learner_pod(&job, 0));
    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(6),
    );
    assert_eq!(end, Some(JobStatus::Completed));
}

/// §III-f: status updates survive helper (controller) crashes — the
/// controller rebuilds from NFS, and the etcd record is already durable.
#[test]
fn helper_crash_does_not_interrupt_status_flow() {
    let (mut sim, platform) = boot(16);
    let job = submit(&mut sim, &platform, manifest("helpercrash", 1200, 0));
    platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Processing,
        SimDuration::from_mins(30),
    );

    let hpod = paths::helper_pod(&job);
    assert!(platform.kube().crash_pod(&mut sim, &hpod));
    sim.run_for(SimDuration::from_mins(1));
    assert_eq!(
        platform.kube().pod_phase(&hpod),
        Some(PodPhase::Running),
        "helper restarted"
    );

    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(6),
    );
    assert_eq!(end, Some(JobStatus::Completed));
    let info = platform.job_info(&job).unwrap();
    assert_eq!(
        info.iteration, 1200,
        "progress tracking must survive the crash"
    );
}

/// §III-f: etcd is 3-way replicated — losing one replica is invisible.
#[test]
fn etcd_node_crash_is_tolerated() {
    let (mut sim, platform) = boot(17);
    let job = submit(&mut sim, &platform, manifest("etcdcrash", 800, 0));
    platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Processing,
        SimDuration::from_mins(30),
    );

    let victim = platform.etcd().leader_id().unwrap();
    platform.etcd().crash(&mut sim, victim);

    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(6),
    );
    assert_eq!(end, Some(JobStatus::Completed));
}

/// The metadata store is journaled: crash + recovery preserves every
/// acknowledged document and the job proceeds.
#[test]
fn mongo_crash_recovery_preserves_state() {
    let (mut sim, platform) = boot(18);
    let job = submit(&mut sim, &platform, manifest("mongocrash", 800, 0));
    platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Processing,
        SimDuration::from_mins(30),
    );

    platform.crash_mongo(&mut sim, Some(SimDuration::from_secs(5)));
    sim.run_for(SimDuration::from_secs(30));

    assert!(platform.job_status(&job).is_some(), "job record recovered");
    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(6),
    );
    assert_eq!(end, Some(JobStatus::Completed));
}

/// A learner that keeps crashing exhausts its restart budget; the
/// controller reports FAILED, the Guardian fails the job and cleans up.
#[test]
fn learner_failure_budget_fails_the_job() {
    let (mut sim, platform) = boot(19);
    let job = submit(&mut sim, &platform, manifest("flaky", 1_000_000, 0));
    platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Processing,
        SimDuration::from_mins(30),
    );

    let lpod = paths::learner_pod(&job, 0);
    let kube = platform.kube().clone();
    let deadline = sim.now() + SimDuration::from_hours(12);
    loop {
        match platform.job_status(&job) {
            Some(s) if s.is_terminal() => break,
            _ => {}
        }
        assert!(sim.now() < deadline, "job never failed");
        if kube.pod_phase(&lpod) == Some(PodPhase::Running) {
            kube.crash_pod(&mut sim, &lpod);
        }
        sim.run_for(SimDuration::from_secs(30));
    }
    assert_eq!(platform.job_status(&job), Some(JobStatus::Failed));
}

/// A job requesting hardware the cluster does not have must not hang in
/// DEPLOYING forever: the LCM's deploy timeout fails it and cleans up.
#[test]
fn unschedulable_job_fails_after_deploy_timeout() {
    let (mut sim, platform) = boot(36);
    let mut m = manifest("impossible", 300, 0);
    m.gpu_kind = dlaas_gpu::GpuKind::V100Sxm2; // the cluster has none
    let job = submit(&mut sim, &platform, m);

    // It deploys (guardian runs, helper comes up) but learners never
    // schedule; after the deploy timeout the platform gives up cleanly.
    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(2),
    );
    assert_eq!(end, Some(JobStatus::Failed), "must fail, not hang");

    sim.run_for(SimDuration::from_mins(2));
    assert!(
        platform
            .kube()
            .pods_matching(&dlaas_kube::labels! {"job" => job.as_str()})
            .is_empty(),
        "undeployable job must be fully cleaned up"
    );
    assert!(platform.nfs().find_volume(&paths::volume(&job)).is_none());
}

/// A transient object-store outage during data staging: load-data keeps
/// retrying (the job sits in DEPLOYING/PROCESSING-pending-data) and the
/// job completes once the store returns — no operator action needed.
#[test]
fn object_store_outage_during_data_staging_is_ridden_out() {
    let (mut sim, platform) = boot(35);
    // Break the store before the job's data can be staged.
    platform.objstore().set_unavailable(true);
    let job = submit(&mut sim, &platform, manifest("cos-outage", 300, 0));

    sim.run_for(SimDuration::from_mins(5));
    let mid = platform.job_status(&job).unwrap();
    assert!(
        !mid.is_terminal(),
        "outage must not fail the job, got {mid}"
    );

    platform.objstore().set_unavailable(false);
    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(4),
    );
    assert_eq!(end, Some(JobStatus::Completed));
}

/// §III-c: API instances are load-balanced with fail-over; losing one
/// replica does not interrupt service.
#[test]
fn api_replica_crash_fails_over() {
    let (mut sim, platform) = boot(20);
    platform.kube().crash_pod(&mut sim, "dlaas-api-0");
    // Submit immediately — the live replica (or a retry) must serve it.
    let job = submit(&mut sim, &platform, manifest("failover", 300, 0));
    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(4),
    );
    assert_eq!(end, Some(JobStatus::Completed));
}

/// A whole GPU node dies: the StatefulSet reschedules the learner onto
/// another node of the same GPU class and training resumes.
#[test]
fn gpu_node_crash_reschedules_learner() {
    let (mut sim, platform) = boot(21);
    let job = submit(&mut sim, &platform, manifest("nodecrash", 1200, 200));
    platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Processing,
        SimDuration::from_mins(30),
    );
    sim.run_for(SimDuration::from_mins(5));

    let lpod = paths::learner_pod(&job, 0);
    let node = platform.kube().pod_node(&lpod).expect("learner placed");
    platform.kube().crash_node(&mut sim, &node);

    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(6),
    );
    assert_eq!(end, Some(JobStatus::Completed));
    // It really moved.
    sim.run_for(SimDuration::from_secs(1));
    let events = platform.kube().events();
    assert!(events.iter().any(|e| e.reason == "NodeLost"));
}

/// §III-h recovery option 2: in a distributed TensorFlow job a restarted
/// learner rejoins and picks up the current parameters from the
/// parameter server (its peers' progress), even with checkpointing off.
#[test]
fn distributed_learner_rejoins_via_parameter_server() {
    let (mut sim, platform) = boot(30);
    let mut m = manifest("ps-rejoin", 3_000, 0); // no checkpoints
    m.learners = 2;
    let job = submit(&mut sim, &platform, m);
    platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Processing,
        SimDuration::from_mins(30),
    );
    sim.run_for(SimDuration::from_mins(15)); // accumulate progress

    let progress_before = platform.job_info(&job).unwrap().iteration;
    assert!(progress_before > 100, "need real progress first");
    platform
        .kube()
        .crash_pod(&mut sim, &paths::learner_pod(&job, 1));

    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(8),
    );
    assert_eq!(end, Some(JobStatus::Completed));

    // The restarted learner's log shows the PS rejoin, at an iteration
    // near its peers' progress (not zero).
    let log = platform
        .objstore()
        .read_text("acme-results", &paths::obj_log(&job, 1))
        .expect("log uploaded");
    let rejoin = log
        .lines()
        .find(|l| l.contains("rejoined via parameter server"))
        .expect("learner must rejoin via the parameter server");
    let iter: u64 = rejoin
        .rsplit(' ')
        .next()
        .and_then(|s| s.parse().ok())
        .expect("rejoin line carries the iteration");
    assert!(
        iter + 500 >= progress_before,
        "rejoined at {iter}, but peers were at {progress_before}"
    );
}

/// Caffe has no parameter server: without checkpoints, a crashed
/// distributed Caffe learner restarts from iteration 0.
#[test]
fn caffe_learner_cannot_rejoin_without_checkpoint() {
    let (mut sim, platform) = boot(33);
    let mut m = manifest("caffe-restart", 2_000, 0);
    m.framework = Framework::Caffe;
    m.model = DlModel::Vgg16;
    m.learners = 2;
    let job = submit(&mut sim, &platform, m);
    platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Processing,
        SimDuration::from_mins(30),
    );
    sim.run_for(SimDuration::from_mins(10));
    platform
        .kube()
        .crash_pod(&mut sim, &paths::learner_pod(&job, 1));
    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(12),
    );
    assert_eq!(end, Some(JobStatus::Completed));
    let log = platform
        .objstore()
        .read_text("acme-results", &paths::obj_log(&job, 1))
        .expect("log uploaded");
    assert!(
        !log.contains("rejoined via parameter server"),
        "Caffe must not use the PS path"
    );
    assert!(
        log.contains("training started at iter 0"),
        "Caffe learner restarts from scratch"
    );
}

/// §III-c metering: the API service accounts requests per key.
#[test]
fn api_meters_requests_per_key() {
    let (mut sim, platform) = boot(34);
    let client = platform.client("metered", KEY);
    let job = submit(&mut sim, &platform, manifest("metered", 300, 0));
    for _ in 0..3 {
        client.status(&mut sim, job.clone(), |_s, r| {
            r.unwrap();
        });
        sim.run_for(SimDuration::from_secs(5));
    }
    client.jobs(&mut sim, |_s, r| {
        r.unwrap();
    });
    sim.run_for(SimDuration::from_secs(5));

    let meters = platform.metering(KEY).expect("metering recorded");
    let get = |k: &str| {
        meters
            .iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(get("submit"), 1);
    assert_eq!(get("status"), 3);
    assert_eq!(get("list"), 1);

    // Unauthorized probes are metered too (by key).
    let bad = platform.client("eve", "bad-key");
    bad.jobs(&mut sim, |_s, _r| {});
    sim.run_for(SimDuration::from_secs(5));
    assert!(platform.metering("bad-key").is_some());
}

/// Race: the user kills the job while the Guardian is mid-deployment.
/// The LCM tears down what exists; the Guardian may still be creating
/// resources, but its next poll sees the terminal status and exits, and
/// the scan GCs any stragglers — the end state is KILLED with nothing
/// left, never a zombie deployment.
#[test]
fn kill_during_deployment_leaves_nothing_behind() {
    let (mut sim, platform) = boot(38);
    let job = submit(&mut sim, &platform, manifest("kill-race", 1_000, 0));
    let s = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Deploying,
        SimDuration::from_mins(10),
    );
    assert_eq!(s, Some(JobStatus::Deploying));

    let client = platform.client("alice", KEY);
    client.kill(&mut sim, job.clone(), |_s, r| r.expect("kill accepted"));
    sim.run_for(SimDuration::from_mins(2));
    assert_eq!(platform.job_status(&job), Some(JobStatus::Killed));

    // Give the scan time to GC anything the racing Guardian recreated.
    sim.run_for(SimDuration::from_mins(2));
    let leftovers = platform
        .kube()
        .pods_matching(&dlaas_kube::labels! {"job" => job.as_str()});
    assert!(leftovers.is_empty(), "zombie resources: {leftovers:?}");
    assert!(platform.nfs().find_volume(&paths::volume(&job)).is_none());
}

/// Race: Guardian and controller both crash during the STORING phase.
/// The restarted pair must pick the transfer back up (NFS markers and
/// etcd keys are durable) and complete the job.
#[test]
fn double_crash_during_storing_still_completes() {
    let (mut sim, platform) = boot(39);
    let job = submit(&mut sim, &platform, manifest("storing-race", 300, 0));
    let s = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Storing,
        SimDuration::from_hours(2),
    );
    assert_eq!(s, Some(JobStatus::Storing));

    platform
        .kube()
        .crash_pod(&mut sim, &paths::guardian_job(&job));
    platform
        .kube()
        .crash_pod(&mut sim, &paths::helper_pod(&job));

    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(4),
    );
    assert_eq!(end, Some(JobStatus::Completed));
    assert!(platform
        .objstore()
        .head("acme-results", &paths::obj_result_model(&job))
        .is_ok());
}

/// The log stream survives learner crashes: lines from before the crash
/// are in the object store even though the learner process died (§II).
#[test]
fn logs_survive_learner_crash() {
    let (mut sim, platform) = boot(22);
    let job = submit(&mut sim, &platform, manifest("logcrash", 1_000_000, 0));
    platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Processing,
        SimDuration::from_mins(30),
    );
    sim.run_for(SimDuration::from_mins(3));

    platform
        .kube()
        .crash_pod(&mut sim, &paths::learner_pod(&job, 0));
    sim.run_for(SimDuration::from_secs(10));

    let obj = platform
        .objstore()
        .head("acme-results", &paths::obj_log(&job, 0));
    assert!(obj.is_ok(), "pre-crash log lines must already be uploaded");

    // And the uploaded log keeps growing after recovery.
    let (size_before, _) = obj.unwrap();
    sim.run_for(SimDuration::from_mins(5));
    let (size_after, _) = platform
        .objstore()
        .head("acme-results", &paths::obj_log(&job, 0))
        .unwrap();
    assert!(size_after > size_before, "log collection must resume");
}
