//! Property-based lifecycle checking: random crash schedules against a
//! live job must never violate the platform's dependability invariants —
//! monotone status, eventual terminal state, and atomic cleanup.

use std::cell::RefCell;
use std::rc::Rc;

use dlaas_core::{paths, DlaasPlatform, JobId, JobStatus, Tenant, TrainingManifest};
use dlaas_gpu::{DlModel, Framework, GpuKind};
use dlaas_sim::{Sim, SimDuration};
use proptest::prelude::*;

const KEY: &str = "prop-key";

#[derive(Debug, Clone, Copy)]
enum Victim {
    Api,
    Lcm,
    Guardian,
    Helper,
    Learner,
    EtcdNode(u8),
    Mongo,
}

fn victim_strategy() -> impl Strategy<Value = Victim> {
    prop_oneof![
        Just(Victim::Api),
        Just(Victim::Lcm),
        Just(Victim::Guardian),
        Just(Victim::Helper),
        Just(Victim::Learner),
        (0..3u8).prop_map(Victim::EtcdNode),
        Just(Victim::Mongo),
    ]
}

fn crash(sim: &mut Sim, platform: &DlaasPlatform, job: &JobId, v: Victim) {
    match v {
        Victim::Api => {
            platform.kube().crash_pod(sim, "dlaas-api-0");
        }
        Victim::Lcm => {
            platform.kube().crash_pod(sim, "dlaas-lcm-0");
        }
        Victim::Guardian => {
            platform.kube().crash_pod(sim, &paths::guardian_job(job));
        }
        Victim::Helper => {
            platform.kube().crash_pod(sim, &paths::helper_pod(job));
        }
        Victim::Learner => {
            platform.kube().crash_pod(sim, &paths::learner_pod(job, 0));
        }
        Victim::EtcdNode(i) => {
            let id = (i % 3) as u32;
            if platform.etcd().raft().node(id).is_alive() {
                platform.etcd().crash(sim, id);
                // Auto-heal after a bit, as an operator would.
                sim.schedule_in(SimDuration::from_secs(20), {
                    let etcd = platform.etcd().clone();
                    move |sim| {
                        if !etcd.raft().node(id).is_alive() {
                            etcd.restart(sim, id);
                        }
                    }
                });
            }
        }
        Victim::Mongo => {
            platform.crash_mongo(sim, Some(SimDuration::from_secs(4)));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        max_shrink_iters: 20,
        .. ProptestConfig::default()
    })]

    #[test]
    fn any_crash_schedule_preserves_lifecycle_invariants(
        seed in 0..u64::MAX,
        faults in proptest::collection::vec((victim_strategy(), 10..240u16), 1..6),
    ) {
        let mut sim = Sim::new(seed);
        sim.trace_mut().set_enabled(false);
        let platform = DlaasPlatform::bootstrapped(&mut sim);
        platform.add_tenant(&Tenant::new("prop", KEY, 0)).expect("bootstrap tenant insert");
        platform.seed_dataset("prop-data", "d/", 1_000_000_000);
        platform.create_bucket("prop-results");
        let manifest = TrainingManifest::builder("prop-job")
            .framework(Framework::TensorFlow)
            .model(DlModel::Resnet50)
            .gpus(GpuKind::K80, 1)
            .data("prop-data", "d/", 1_000_000_000)
            .results("prop-results")
            .iterations(400)
            .checkpoint_every(100)
            .build()
            .unwrap();
        let client = platform.client("prop", KEY);
        let got: Rc<RefCell<Option<JobId>>> = Rc::new(RefCell::new(None));
        let g = got.clone();
        client.submit(&mut sim, manifest, move |_s, r| {
            *g.borrow_mut() = Some(r.expect("accepted"));
        });
        sim.run_until_pred(|_| got.borrow().is_some());
        let job = got.borrow().clone().unwrap();

        // Apply the fault schedule while watching status monotonicity.
        let mut last_rank = 0u8;
        for (victim, delay_s) in faults {
            sim.run_for(SimDuration::from_secs(delay_s as u64));
            crash(&mut sim, &platform, &job, victim);
            if let Some(s) = platform.job_status(&job) {
                prop_assert!(s.rank() >= last_rank, "status went backwards");
                last_rank = s.rank();
            }
        }

        // Eventually terminal (COMPLETED here: single-learner crashes are
        // all within the restart budget given only ≤5 faults).
        let end = platform.wait_for_status(
            &mut sim,
            &job,
            JobStatus::Completed,
            SimDuration::from_hours(12),
        );
        prop_assert!(
            end.is_some_and(dlaas_core::JobStatus::is_terminal),
            "job must reach a terminal state, got {end:?}"
        );
        prop_assert!(end.unwrap().rank() >= last_rank);

        // Atomic cleanup at quiescence: no job resources left behind.
        sim.run_for(SimDuration::from_mins(3));
        let leftovers = platform
            .kube()
            .pods_matching(&dlaas_kube::labels! {"job" => job.as_str()});
        prop_assert!(leftovers.is_empty(), "leaked pods: {leftovers:?}");
        prop_assert!(
            platform.nfs().find_volume(&paths::volume(&job)).is_none(),
            "leaked volume"
        );

        // History well-formed: monotone ranks and timestamps.
        let info = platform.job_info(&job).unwrap();
        for w in info.history.windows(2) {
            prop_assert!(w[0].0.rank() < w[1].0.rank(), "history rank order");
            prop_assert!(w[0].1 <= w[1].1, "history timestamp order");
        }
    }
}
