//! End-to-end platform tests: the full submission → deployment →
//! training → storage → completion pipeline over every substrate.

use std::cell::RefCell;
use std::rc::Rc;

use dlaas_core::{paths, DlaasPlatform, JobId, JobStatus, Tenant, TrainingManifest};
use dlaas_gpu::{DlModel, Framework, GpuKind};
use dlaas_kube::PodPhase;
use dlaas_sim::{Sim, SimDuration};

const KEY: &str = "key-acme";

fn boot(seed: u64) -> (Sim, DlaasPlatform) {
    let mut sim = Sim::new(seed);
    sim.trace_mut().set_enabled(false);
    let platform = DlaasPlatform::bootstrapped(&mut sim);
    platform
        .add_tenant(&Tenant::new("acme", KEY, 64))
        .expect("bootstrap tenant insert");
    platform.seed_dataset("acme-data", "imagenet/", 5_000_000_000);
    platform.create_bucket("acme-results");
    (sim, platform)
}

fn manifest(name: &str) -> TrainingManifest {
    TrainingManifest::builder(name)
        .framework(Framework::TensorFlow)
        .model(DlModel::Resnet50)
        .gpus(GpuKind::K80, 1)
        .learners(1)
        .data("acme-data", "imagenet/", 5_000_000_000)
        .results("acme-results")
        .iterations(500)
        .build()
        .unwrap()
}

fn submit(sim: &mut Sim, platform: &DlaasPlatform, m: TrainingManifest) -> JobId {
    let client = platform.client("alice", KEY);
    let got: Rc<RefCell<Option<Result<JobId, _>>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    client.submit(sim, m, move |_s, r| *g.borrow_mut() = Some(r));
    sim.run_until_pred(|_| got.borrow().is_some());
    let r = got.borrow().clone().unwrap();
    r.expect("submission accepted")
}

#[test]
fn job_runs_to_completion() {
    let (mut sim, platform) = boot(1);
    let job = submit(&mut sim, &platform, manifest("happy"));

    // The ACK means the job is already durable.
    assert_eq!(platform.job_status(&job), Some(JobStatus::Pending));

    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(4),
    );
    assert_eq!(end, Some(JobStatus::Completed), "job must complete");

    // Lifecycle history is ordered and complete.
    let info = platform.job_info(&job).unwrap();
    let statuses: Vec<JobStatus> = info.history.iter().map(|(s, _)| *s).collect();
    assert_eq!(
        statuses,
        vec![
            JobStatus::Pending,
            JobStatus::Deploying,
            JobStatus::Processing,
            JobStatus::Storing,
            JobStatus::Completed
        ]
    );
    // Timestamps are monotone.
    for w in info.history.windows(2) {
        assert!(w[0].1 <= w[1].1, "history timestamps must be ordered");
    }
    // Progress and throughput were recorded.
    assert_eq!(info.iteration, 500);
    let thr = info.images_per_sec.expect("throughput recorded");
    assert!(
        thr > 10.0 && thr < 100.0,
        "K80 ResNet-50 ≈ 50 img/s, got {thr}"
    );

    // Results and logs are in the object store.
    let store = platform.objstore();
    assert!(store
        .head("acme-results", &paths::obj_result_model(&job))
        .is_ok());
    assert!(store.head("acme-results", &paths::obj_log(&job, 0)).is_ok());

    // Everything was garbage collected.
    sim.run_for(SimDuration::from_secs(60));
    assert!(platform
        .kube()
        .pods_matching(&dlaas_kube::labels! {"job" => job.as_str()})
        .is_empty());
    assert!(platform.nfs().find_volume(&paths::volume(&job)).is_none());
}

#[test]
fn status_progression_is_observable_through_the_api() {
    let (mut sim, platform) = boot(2);
    let job = submit(&mut sim, &platform, manifest("observed"));
    let client = platform.client("alice", KEY);

    // Sample the externally visible status as the job advances; it must
    // never move backwards (the §II "accurate status updates" promise).
    let mut seen = Vec::new();
    for _ in 0..200 {
        sim.run_for(SimDuration::from_secs(10));
        let got: Rc<RefCell<Option<JobStatus>>> = Rc::new(RefCell::new(None));
        let g = got.clone();
        client.status(&mut sim, job.clone(), move |_s, r| {
            if let Ok(info) = r {
                *g.borrow_mut() = Some(info.status);
            }
        });
        sim.run_for(SimDuration::from_secs(5));
        let observed = *got.borrow();
        if let Some(s) = observed {
            seen.push(s);
            if s.is_terminal() {
                break;
            }
        }
    }
    assert_eq!(*seen.last().unwrap(), JobStatus::Completed);
    for w in seen.windows(2) {
        assert!(
            w[0].rank() <= w[1].rank(),
            "status went backwards: {seen:?}"
        );
    }
}

#[test]
fn learner_pods_exist_while_processing() {
    let (mut sim, platform) = boot(3);
    let m = {
        let mut m = manifest("multi");
        m.learners = 2;
        m.iterations = 2_000;
        m
    };
    let job = submit(&mut sim, &platform, m);
    let s = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Processing,
        SimDuration::from_mins(30),
    );
    assert_eq!(s, Some(JobStatus::Processing));
    for i in 0..2 {
        assert_eq!(
            platform.kube().pod_phase(&paths::learner_pod(&job, i)),
            Some(PodPhase::Running),
            "learner {i}"
        );
    }
    assert_eq!(
        platform.kube().pod_phase(&paths::helper_pod(&job)),
        Some(PodPhase::Running)
    );
    // Per-learner phases are visible through the API while running.
    sim.run_for(SimDuration::from_mins(2));
    let info = platform.job_info(&job).unwrap();
    assert_eq!(
        info.learners.len(),
        2,
        "both learners mirrored: {:?}",
        info.learners
    );
    assert!(info
        .learners
        .iter()
        .all(|(_, phase)| phase.starts_with("PROCESSING")));

    // Network policies are in force: learners cannot reach core services.
    assert!(!platform.kube().traffic_allowed(
        &paths::learner_pod(&job, 0),
        None,
        Some(dlaas_core::API_SERVICE)
    ));
}

#[test]
fn logs_are_streamed_and_fetchable() {
    let (mut sim, platform) = boot(4);
    let job = submit(&mut sim, &platform, manifest("logged"));
    platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(4),
    );

    let client = platform.client("alice", KEY);
    let got: Rc<RefCell<Option<Vec<String>>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    client.logs(&mut sim, job.clone(), 0, move |_s, r| {
        *g.borrow_mut() = Some(r.expect("logs available"));
    });
    sim.run_for(SimDuration::from_secs(10));
    let lines = got.borrow().clone().unwrap();
    assert!(lines.len() > 3, "got {} log lines", lines.len());
    assert!(lines.iter().any(|l| l.contains("training started")));
    assert!(lines.iter().any(|l| l.contains("loss=")));
}

#[test]
fn authentication_and_quota_enforced() {
    let (mut sim, platform) = boot(5);
    // Wrong key is rejected.
    let bad_client = platform.client("eve", "wrong-key");
    let got = Rc::new(RefCell::new(None));
    let g = got.clone();
    bad_client.submit(&mut sim, manifest("evil"), move |_s, r| {
        *g.borrow_mut() = Some(r);
    });
    sim.run_for(SimDuration::from_secs(10));
    let r = got.borrow().clone().unwrap();
    match r {
        Err(dlaas_core::ClientError::Rejected(m)) => assert!(m.contains("unauthorized")),
        other => panic!("expected rejection, got {other:?}"),
    }

    // A duplicate bootstrap insert surfaces the store's rejection
    // instead of silently leaving the original in place unnoticed
    // (regression: `add_tenant` used to `let _ =` the insert result).
    assert!(
        platform.add_tenant(&Tenant::new("acme", KEY, 64)).is_err(),
        "duplicate tenant registration must be rejected loudly"
    );

    // A tenant with a 2-GPU quota cannot run a 4-GPU job after a 2-GPU one.
    platform
        .add_tenant(&Tenant::new("small", "key-small", 2))
        .expect("bootstrap tenant insert");
    let client = platform.client("bob", "key-small");
    let mut m1 = manifest("first");
    m1.gpus_per_learner = 2;
    let ok = Rc::new(RefCell::new(None));
    let o = ok.clone();
    client.submit(&mut sim, m1, move |_s, r| *o.borrow_mut() = Some(r));
    sim.run_for(SimDuration::from_secs(10));
    assert!(ok.borrow().clone().unwrap().is_ok());

    let mut m2 = manifest("second");
    m2.gpus_per_learner = 1;
    let queued = Rc::new(RefCell::new(None));
    let q = queued.clone();
    client.submit(&mut sim, m2, move |_s, r| *q.borrow_mut() = Some(r));
    sim.run_for(SimDuration::from_secs(10));
    let j2 = queued
        .borrow()
        .clone()
        .unwrap()
        .expect("over-quota submission is accepted and queued, not rejected");
    assert_eq!(platform.job_status(&j2), Some(JobStatus::Queued));

    // Once the first job terminates and the quota frees up, the
    // admission arbiter promotes the queued job and it runs to the end.
    let end = platform.wait_for_status(
        &mut sim,
        &j2,
        JobStatus::Completed,
        SimDuration::from_hours(4),
    );
    assert_eq!(end, Some(JobStatus::Completed), "queued job must drain");
}

#[test]
fn kill_terminates_and_cleans_up() {
    let (mut sim, platform) = boot(6);
    let m = {
        let mut m = manifest("killme");
        m.iterations = 1_000_000; // would run for a long time
        m
    };
    let job = submit(&mut sim, &platform, m);
    platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Processing,
        SimDuration::from_mins(30),
    );

    let client = platform.client("alice", KEY);
    client.kill(&mut sim, job.clone(), |_s, r| r.expect("kill accepted"));
    sim.run_for(SimDuration::from_secs(30));
    assert_eq!(platform.job_status(&job), Some(JobStatus::Killed));

    sim.run_for(SimDuration::from_secs(60));
    assert!(
        platform
            .kube()
            .pods_matching(&dlaas_kube::labels! {"job" => job.as_str()})
            .is_empty(),
        "all job pods must be gone after kill"
    );
    assert!(platform.nfs().find_volume(&paths::volume(&job)).is_none());
}

#[test]
fn api_tier_scales_elastically_without_disruption() {
    let (mut sim, platform) = boot(8);
    let _client = platform.client("alice", KEY);

    // Scale up to 4 replicas mid-flight, then down to 1; submissions keep
    // working throughout (§I goal 2).
    platform.scale_api(&mut sim, 4);
    sim.run_for(SimDuration::from_secs(15));
    for i in 0..4 {
        assert!(
            platform.kube().pod_ready(&sim, &format!("dlaas-api-{i}")),
            "replica {i} not up after scale-out"
        );
    }
    let j1 = submit(&mut sim, &platform, manifest("during-scaleout"));

    platform.scale_api(&mut sim, 1);
    sim.run_for(SimDuration::from_secs(10));
    assert!(platform.kube().pod_phase("dlaas-api-3").is_none());
    let j2 = submit(&mut sim, &platform, manifest("after-scalein"));

    for j in [&j1, &j2] {
        let end = platform.wait_for_status(
            &mut sim,
            j,
            JobStatus::Completed,
            SimDuration::from_hours(4),
        );
        assert_eq!(end, Some(JobStatus::Completed));
    }
}

#[test]
fn node_maintenance_drain_preserves_running_jobs() {
    let (mut sim, platform) = boot(9);
    let m = {
        let mut m = manifest("maint");
        m.checkpoint_every = 100;
        m.iterations = 1_500;
        m
    };
    let job = submit(&mut sim, &platform, m);
    platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Processing,
        SimDuration::from_mins(30),
    );
    sim.run_for(SimDuration::from_mins(5));

    // Drain the learner's node for maintenance: the learner is evicted
    // and rescheduled; the job keeps going from its checkpoint.
    let lpod = paths::learner_pod(&job, 0);
    let node = platform.kube().pod_node(&lpod).unwrap();
    let evicted = platform.kube().drain_node(&mut sim, &node);
    assert!(evicted.contains(&lpod));

    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(6),
    );
    assert_eq!(end, Some(JobStatus::Completed));
    let info = platform.job_info(&job).unwrap();
    assert!(
        info.learner_restarts >= 1,
        "the eviction shows up as a restart"
    );
}

#[test]
fn deterministic_end_to_end() {
    fn run(seed: u64) -> (Vec<(JobStatus, u64)>, Option<f64>) {
        let (mut sim, platform) = boot(seed);
        let job = submit(&mut sim, &platform, manifest("det"));
        platform.wait_for_status(
            &mut sim,
            &job,
            JobStatus::Completed,
            SimDuration::from_hours(4),
        );
        let info = platform.job_info(&job).unwrap();
        (info.history, info.images_per_sec)
    }
    assert_eq!(run(7), run(7));
}
