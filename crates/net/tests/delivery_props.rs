//! Property tests of the network layer's delivery contract: without
//! faults every message is delivered exactly once; with faults the
//! accounting always balances (sent = delivered + each drop reason); and
//! RPC calls always complete exactly once with some outcome.

use std::cell::RefCell;
use std::rc::Rc;

use dlaas_net::{Addr, LatencyModel, Net, RpcLayer};
use dlaas_sim::{Sim, SimDuration};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn fault_free_delivery_is_exactly_once(
        seed in 0..u64::MAX,
        sends in proptest::collection::vec((0..5u8, 0..5u8, 0..1000u32), 1..80),
    ) {
        let mut sim = Sim::new(seed);
        let net: Net<(u8, u32)> = Net::new(
            &mut sim,
            LatencyModel::Uniform(SimDuration::from_micros(50), SimDuration::from_millis(5)),
        );
        let received: Rc<RefCell<Vec<(u8, u8, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        for ep in 0..5u8 {
            let r = received.clone();
            net.register(Addr::new(format!("ep{ep}")), move |_sim, env| {
                let (from, tag) = env.msg;
                r.borrow_mut().push((from, ep, tag));
            });
        }
        for (from, to, tag) in &sends {
            net.send(
                &mut sim,
                Addr::new(format!("ep{from}")),
                Addr::new(format!("ep{to}")),
                (*from, *tag),
            );
        }
        sim.run_until_idle();

        let got = received.borrow();
        prop_assert_eq!(got.len(), sends.len(), "exactly-once delivery");
        // Multiset equality: every send accounted for exactly once.
        let mut want: Vec<(u8, u8, u32)> =
            sends.iter().map(|(f, t, g)| (*f, *t, *g)).collect();
        let mut have = got.clone();
        want.sort_unstable();
        have.sort_unstable();
        prop_assert_eq!(have, want);
        let stats = net.stats();
        prop_assert_eq!(stats.sent, sends.len() as u64);
        prop_assert_eq!(stats.delivered, sends.len() as u64);
    }

    #[test]
    fn lossy_delivery_accounting_balances(
        seed in 0..u64::MAX,
        loss_pct in 0..100u8,
        n in 1..150usize,
    ) {
        let mut sim = Sim::new(seed);
        let net: Net<u32> = Net::new(&mut sim, LatencyModel::local());
        let count = Rc::new(RefCell::new(0u64));
        let c = count.clone();
        net.register(Addr::new("sink"), move |_s, _e| *c.borrow_mut() += 1);
        net.set_loss(loss_pct as f64 / 100.0);
        for i in 0..n {
            net.send(&mut sim, Addr::new("src"), Addr::new("sink"), i as u32);
        }
        sim.run_until_idle();
        let stats = net.stats();
        prop_assert_eq!(stats.sent, n as u64);
        prop_assert_eq!(
            stats.delivered + stats.dropped_loss + stats.dropped_partition + stats.dropped_down,
            stats.sent,
            "every message accounted for"
        );
        prop_assert_eq!(*count.borrow(), stats.delivered);
    }

    #[test]
    fn rpc_calls_complete_exactly_once_under_chaos(
        seed in 0..u64::MAX,
        loss_pct in 0..80u8,
        calls in 1..40usize,
        server_up in any::<bool>(),
    ) {
        let mut sim = Sim::new(seed);
        let rpc: RpcLayer<u32, u32> = RpcLayer::new(
            &mut sim,
            LatencyModel::Uniform(SimDuration::from_micros(100), SimDuration::from_millis(3)),
        );
        if server_up {
            rpc.serve(Addr::new("srv"), |sim, req, r| r.ok(sim, req + 1));
        }
        rpc.net().set_loss(loss_pct as f64 / 100.0);
        let outcomes = Rc::new(RefCell::new(vec![0u32; calls]));
        for i in 0..calls {
            let o = outcomes.clone();
            rpc.call(
                &mut sim,
                Addr::new("cli"),
                Addr::new("srv"),
                i as u32,
                SimDuration::from_millis(200),
                move |_sim, _result| {
                    o.borrow_mut()[i] += 1;
                },
            );
        }
        sim.run_until_idle();
        // The completion contract: every call's callback fired exactly
        // once, regardless of loss or server absence.
        for (i, n) in outcomes.borrow().iter().enumerate() {
            prop_assert_eq!(*n, 1, "call {} completed {} times", i, n);
        }
    }
}
