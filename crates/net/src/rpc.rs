//! Request/response RPC over the simulated network.
//!
//! The paper's microservices communicate over GRPC. [`RpcLayer`] reproduces
//! the relevant semantics: typed request/response pairs, deadlines
//! (timeouts), retries with backoff, and a resolver hook so calls can be
//! addressed to a *service* (load-balanced across healthy instances by the
//! Kubernetes service registry) rather than a fixed endpoint.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use dlaas_sim::{EventId, Sim, SimDuration};

use crate::{Addr, Envelope, LatencyModel, Net};

/// Why an RPC failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// No response arrived within the deadline.
    Timeout,
    /// The resolver produced no healthy endpoint for the target service.
    NoEndpoint(String),
    /// The server handler reported an application-level failure.
    Remote(String),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Timeout => write!(f, "rpc deadline exceeded"),
            RpcError::NoEndpoint(svc) => write!(f, "no healthy endpoint for service {svc}"),
            RpcError::Remote(m) => write!(f, "remote error: {m}"),
        }
    }
}

impl std::error::Error for RpcError {}

/// Wire frames exchanged by the RPC layer.
#[derive(Debug, Clone)]
pub enum RpcFrame<Req, Resp> {
    /// A request carrying a correlation id.
    Request {
        /// Correlation id, unique per layer.
        id: u64,
        /// The request payload.
        req: Req,
    },
    /// A response to the request with the same id.
    Response {
        /// Correlation id of the request being answered.
        id: u64,
        /// Outcome produced by the server handler.
        resp: Result<Resp, String>,
    },
}

/// Capability to answer one request; passed to server handlers so they can
/// reply immediately or after further asynchronous work.
pub struct Responder<Req: 'static, Resp: 'static> {
    layer: RpcLayer<Req, Resp>,
    id: u64,
    server: Addr,
    client: Addr,
}

impl<Req, Resp> fmt::Debug for Responder<Req, Resp> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Responder")
            .field("id", &self.id)
            .field("client", &self.client)
            .finish()
    }
}

impl<Req: 'static, Resp: 'static> Responder<Req, Resp> {
    /// Sends a successful response.
    pub fn ok(self, sim: &mut Sim, resp: Resp) {
        self.finish(sim, Ok(resp));
    }

    /// Sends an application-level error.
    pub fn err(self, sim: &mut Sim, msg: impl Into<String>) {
        self.finish(sim, Err(msg.into()));
    }

    fn finish(self, sim: &mut Sim, resp: Result<Resp, String>) {
        self.layer.net.send(
            sim,
            self.server,
            self.client,
            RpcFrame::Response { id: self.id, resp },
        );
    }
}

type ReplyFn<Resp> = Box<dyn FnOnce(&mut Sim, Result<Resp, RpcError>)>;

/// A target-resolution closure for [`RpcLayer::call_service`] — returns a
/// healthy endpoint for the service, or `None` when none exists right now.
pub type Resolver = Rc<dyn Fn(&mut Sim) -> Option<Addr>>;

struct Pending<Resp> {
    reply: ReplyFn<Resp>,
    timeout_ev: EventId,
}

type ServerFn<Req, Resp> = Rc<dyn Fn(&mut Sim, Req, Responder<Req, Resp>)>;

struct LayerState<Req: 'static, Resp: 'static> {
    pending: BTreeMap<u64, Pending<Resp>>,
    next_id: u64,
    /// Addresses with a registered dispatch handler on the network. One
    /// endpoint can be both a server and a client (e.g. the API service
    /// serves users while calling the LCM), so the single per-address
    /// handler dispatches on the frame type.
    endpoints: std::collections::BTreeSet<Addr>,
    servers: BTreeMap<Addr, ServerFn<Req, Resp>>,
}

/// Typed request/response RPC over a [`Net`]. Cloning shares the layer.
///
/// # Examples
///
/// ```
/// use dlaas_net::{Addr, LatencyModel, RpcLayer};
/// use dlaas_sim::{Sim, SimDuration};
/// use std::{cell::Cell, rc::Rc};
///
/// let mut sim = Sim::new(1);
/// let rpc: RpcLayer<u32, u32> = RpcLayer::new(&mut sim, LatencyModel::local());
///
/// rpc.serve(Addr::new("doubler"), |sim, req, responder| {
///     responder.ok(sim, req * 2);
/// });
///
/// let got = Rc::new(Cell::new(0));
/// let g = got.clone();
/// rpc.call(
///     &mut sim,
///     Addr::new("client"),
///     Addr::new("doubler"),
///     21,
///     SimDuration::from_secs(1),
///     move |_sim, result| g.set(result.unwrap()),
/// );
/// sim.run_until_idle();
/// assert_eq!(got.get(), 42);
/// ```
pub struct RpcLayer<Req: 'static, Resp: 'static> {
    net: Net<RpcFrame<Req, Resp>>,
    state: Rc<RefCell<LayerState<Req, Resp>>>,
}

impl<Req, Resp> Clone for RpcLayer<Req, Resp> {
    fn clone(&self) -> Self {
        RpcLayer {
            net: self.net.clone(),
            state: self.state.clone(),
        }
    }
}

impl<Req, Resp> fmt::Debug for RpcLayer<Req, Resp> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RpcLayer")
            .field("pending", &self.state.borrow().pending.len())
            .finish()
    }
}

impl<Req: 'static, Resp: 'static> RpcLayer<Req, Resp> {
    /// Creates an RPC layer over a fresh network with the given latency.
    pub fn new(sim: &mut Sim, latency: LatencyModel) -> Self {
        RpcLayer {
            net: Net::new(sim, latency),
            state: Rc::new(RefCell::new(LayerState {
                pending: BTreeMap::new(),
                next_id: 0,
                endpoints: Default::default(),
                servers: BTreeMap::new(),
            })),
        }
    }

    /// The underlying network (for partitions, loss, endpoint up/down).
    pub fn net(&self) -> &Net<RpcFrame<Req, Resp>> {
        &self.net
    }

    /// Registers a server handler at `addr`. The handler receives each
    /// request with a [`Responder`] it must eventually consume. The
    /// address can simultaneously act as an RPC client.
    pub fn serve(
        &self,
        addr: Addr,
        handler: impl Fn(&mut Sim, Req, Responder<Req, Resp>) + 'static,
    ) {
        self.state
            .borrow_mut()
            .servers
            .insert(addr.clone(), Rc::new(handler));
        self.ensure_endpoint(&addr);
        // (Re-)registering also brings a previously-stopped endpoint up.
        self.net.set_up(&addr, true);
    }

    /// Stops serving at `addr` (e.g. the process crashed). In-flight
    /// requests to it will time out at their callers. The endpoint also
    /// stops receiving responses to its own outstanding calls (the
    /// process is gone).
    pub fn stop_serving(&self, addr: &Addr) {
        {
            let mut s = self.state.borrow_mut();
            s.servers.remove(addr);
            s.endpoints.remove(addr);
        }
        self.net.unregister(addr);
    }

    /// Registers the per-address dispatch handler once: requests go to
    /// the server handler (if any), responses complete pending calls.
    fn ensure_endpoint(&self, addr: &Addr) {
        {
            let mut s = self.state.borrow_mut();
            if !s.endpoints.insert(addr.clone()) {
                return;
            }
        }
        let layer = self.clone();
        let my_addr = addr.clone();
        self.net.register(
            addr.clone(),
            move |sim, env: Envelope<RpcFrame<Req, Resp>>| {
                match env.msg {
                    RpcFrame::Request { id, req } => {
                        let server = layer.state.borrow().servers.get(&my_addr).cloned();
                        if let Some(handler) = server {
                            let responder = Responder {
                                layer: layer.clone(),
                                id,
                                server: my_addr.clone(),
                                client: env.from,
                            };
                            handler(sim, req, responder);
                        }
                        // No server here: drop; the caller times out.
                    }
                    RpcFrame::Response { id, resp } => {
                        layer.complete(sim, id, resp.map_err(RpcError::Remote));
                    }
                }
            },
        );
    }

    fn complete(&self, sim: &mut Sim, id: u64, result: Result<Resp, RpcError>) {
        let pending = self.state.borrow_mut().pending.remove(&id);
        if let Some(p) = pending {
            sim.cancel(p.timeout_ev);
            (p.reply)(sim, result);
        }
        // else: response arrived after timeout — dropped, caller already failed.
    }

    /// Issues a request from `from` to the fixed endpoint `to` with a
    /// deadline. Exactly one of the outcomes is delivered to `on_reply`:
    /// the response, a remote error, or [`RpcError::Timeout`].
    pub fn call(
        &self,
        sim: &mut Sim,
        from: Addr,
        to: Addr,
        req: Req,
        timeout: SimDuration,
        on_reply: impl FnOnce(&mut Sim, Result<Resp, RpcError>) + 'static,
    ) {
        self.ensure_endpoint(&from);
        let id = {
            let mut s = self.state.borrow_mut();
            let id = s.next_id;
            s.next_id += 1;
            id
        };
        let layer = self.clone();
        let timeout_ev = sim.schedule_in(timeout, move |sim| {
            layer.complete(sim, id, Err(RpcError::Timeout));
        });
        self.state.borrow_mut().pending.insert(
            id,
            Pending {
                reply: Box::new(on_reply),
                timeout_ev,
            },
        );
        self.net.send(sim, from, to, RpcFrame::Request { id, req });
    }

    /// Issues a request to a *service* through `resolve`, retrying up to
    /// `retries` additional times on timeout/no-endpoint with the given
    /// backoff between attempts. Application-level (`Remote`) errors are
    /// not retried — the request reached the server.
    #[allow(clippy::too_many_arguments)]
    pub fn call_service(
        &self,
        sim: &mut Sim,
        from: Addr,
        service: String,
        resolve: Resolver,
        req: Req,
        timeout: SimDuration,
        retries: u32,
        backoff: SimDuration,
        on_reply: impl FnOnce(&mut Sim, Result<Resp, RpcError>) + 'static,
    ) where
        Req: Clone,
    {
        let target = resolve(sim);
        match target {
            None => {
                if retries == 0 {
                    on_reply(sim, Err(RpcError::NoEndpoint(service)));
                } else {
                    let layer = self.clone();
                    sim.schedule_in(backoff, move |sim| {
                        layer.call_service(
                            sim,
                            from,
                            service,
                            resolve,
                            req,
                            timeout,
                            retries - 1,
                            backoff,
                            on_reply,
                        );
                    });
                }
            }
            Some(addr) => {
                let layer = self.clone();
                let req_clone = req.clone();
                self.call(
                    sim,
                    from.clone(),
                    addr,
                    req,
                    timeout,
                    move |sim, result| match result {
                        Err(RpcError::Timeout) if retries > 0 => {
                            sim.schedule_in(backoff, move |sim| {
                                layer.call_service(
                                    sim,
                                    from,
                                    service,
                                    resolve,
                                    req_clone,
                                    timeout,
                                    retries - 1,
                                    backoff,
                                    on_reply,
                                );
                            });
                        }
                        other => on_reply(sim, other),
                    },
                );
            }
        }
    }
}

/// A round-robin resolver over a mutable set of endpoints, with per-endpoint
/// health; the building block for load-balanced service calls when a full
/// Kubernetes service registry is not in play.
///
/// # Examples
///
/// ```
/// use dlaas_net::{Addr, RoundRobin};
///
/// let rr = RoundRobin::new();
/// rr.add(Addr::new("api-0"));
/// rr.add(Addr::new("api-1"));
/// assert_eq!(rr.next().unwrap(), Addr::new("api-0"));
/// assert_eq!(rr.next().unwrap(), Addr::new("api-1"));
/// assert_eq!(rr.next().unwrap(), Addr::new("api-0"));
/// rr.set_healthy(&Addr::new("api-0"), false);
/// assert_eq!(rr.next().unwrap(), Addr::new("api-1"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    inner: Rc<RefCell<RoundRobinState>>,
}

#[derive(Debug, Default)]
struct RoundRobinState {
    endpoints: Vec<(Addr, bool)>,
    cursor: usize,
}

impl RoundRobin {
    /// Creates an empty balancer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a healthy endpoint (no-op if already present).
    pub fn add(&self, addr: Addr) {
        let mut s = self.inner.borrow_mut();
        if !s.endpoints.iter().any(|(a, _)| *a == addr) {
            s.endpoints.push((addr, true));
        }
    }

    /// Removes an endpoint.
    pub fn remove(&self, addr: &Addr) {
        self.inner.borrow_mut().endpoints.retain(|(a, _)| a != addr);
    }

    /// Marks an endpoint healthy or unhealthy.
    pub fn set_healthy(&self, addr: &Addr, healthy: bool) {
        let mut s = self.inner.borrow_mut();
        if let Some(e) = s.endpoints.iter_mut().find(|(a, _)| a == addr) {
            e.1 = healthy;
        }
    }

    /// Next healthy endpoint in rotation, or `None` if none are healthy.
    pub fn next(&self) -> Option<Addr> {
        let mut s = self.inner.borrow_mut();
        let n = s.endpoints.len();
        for _ in 0..n {
            let i = s.cursor % n.max(1);
            s.cursor = s.cursor.wrapping_add(1);
            let (addr, healthy) = s.endpoints[i].clone();
            if healthy {
                return Some(addr);
            }
        }
        None
    }

    /// Number of endpoints (healthy or not).
    pub fn len(&self) -> usize {
        self.inner.borrow().endpoints.len()
    }

    /// `true` when no endpoints are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn layer(sim: &mut Sim) -> RpcLayer<String, String> {
        RpcLayer::new(sim, LatencyModel::Fixed(SimDuration::from_millis(1)))
    }

    #[test]
    fn request_response_roundtrip() {
        let mut sim = Sim::new(1);
        let rpc = layer(&mut sim);
        rpc.serve(Addr::new("echo"), |sim, req: String, r| {
            r.ok(sim, format!("echo:{req}"));
        });
        let got: Rc<RefCell<Option<String>>> = Rc::new(RefCell::new(None));
        let g = got.clone();
        rpc.call(
            &mut sim,
            Addr::new("c"),
            Addr::new("echo"),
            "hi".into(),
            SimDuration::from_secs(1),
            move |_, r| *g.borrow_mut() = Some(r.unwrap()),
        );
        sim.run_until_idle();
        assert_eq!(got.borrow().as_deref(), Some("echo:hi"));
    }

    #[test]
    fn remote_error_propagates() {
        let mut sim = Sim::new(1);
        let rpc = layer(&mut sim);
        rpc.serve(Addr::new("s"), |sim, _req, r| r.err(sim, "boom"));
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        rpc.call(
            &mut sim,
            Addr::new("c"),
            Addr::new("s"),
            "x".into(),
            SimDuration::from_secs(1),
            move |_, r| *g.borrow_mut() = Some(r),
        );
        sim.run_until_idle();
        assert_eq!(*got.borrow(), Some(Err(RpcError::Remote("boom".into()))));
    }

    #[test]
    fn timeout_fires_when_server_absent() {
        let mut sim = Sim::new(1);
        let rpc = layer(&mut sim);
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        rpc.call(
            &mut sim,
            Addr::new("c"),
            Addr::new("nobody"),
            "x".into(),
            SimDuration::from_millis(100),
            move |_, r| *g.borrow_mut() = Some(r),
        );
        sim.run_until_idle();
        assert_eq!(*got.borrow(), Some(Err(RpcError::Timeout)));
        assert_eq!(sim.now().as_millis(), 100);
    }

    #[test]
    fn late_response_after_timeout_is_dropped() {
        let mut sim = Sim::new(1);
        let rpc = layer(&mut sim);
        // Server replies after 200ms (deferred), client deadline is 50ms.
        rpc.serve(Addr::new("slow"), |sim, _req: String, r| {
            sim.schedule_in(SimDuration::from_millis(200), move |sim| {
                r.ok(sim, "late".into());
            });
        });
        let calls = Rc::new(Cell::new(0));
        let c = calls.clone();
        let outcome = Rc::new(RefCell::new(None));
        let o = outcome.clone();
        rpc.call(
            &mut sim,
            Addr::new("c"),
            Addr::new("slow"),
            "x".into(),
            SimDuration::from_millis(50),
            move |_, r| {
                c.set(c.get() + 1);
                *o.borrow_mut() = Some(r);
            },
        );
        sim.run_until_idle();
        assert_eq!(calls.get(), 1, "callback must fire exactly once");
        assert_eq!(*outcome.borrow(), Some(Err(RpcError::Timeout)));
    }

    #[test]
    fn deferred_reply_within_deadline_succeeds() {
        let mut sim = Sim::new(1);
        let rpc = layer(&mut sim);
        rpc.serve(Addr::new("async"), |sim, req: String, r| {
            sim.schedule_in(SimDuration::from_millis(10), move |sim| {
                r.ok(sim, format!("done:{req}"));
            });
        });
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        rpc.call(
            &mut sim,
            Addr::new("c"),
            Addr::new("async"),
            "job".into(),
            SimDuration::from_secs(1),
            move |_, r| *g.borrow_mut() = Some(r.unwrap()),
        );
        sim.run_until_idle();
        assert_eq!(got.borrow().as_deref(), Some("done:job"));
    }

    #[test]
    fn call_service_retries_until_endpoint_appears() {
        let mut sim = Sim::new(1);
        let rpc = layer(&mut sim);
        let rr = RoundRobin::new();
        // Endpoint appears after 50ms.
        let rr2 = rr.clone();
        let rpc2 = rpc.clone();
        sim.schedule_in(SimDuration::from_millis(50), move |_| {
            rpc2.serve(Addr::new("api-0"), |sim, _req: String, r| {
                r.ok(sim, "served".into());
            });
            rr2.add(Addr::new("api-0"));
        });
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        let rr3 = rr.clone();
        rpc.call_service(
            &mut sim,
            Addr::new("c"),
            "api".into(),
            Rc::new(move |_| rr3.next()),
            "x".into(),
            SimDuration::from_millis(100),
            5,
            SimDuration::from_millis(20),
            move |_, r| *g.borrow_mut() = Some(r),
        );
        sim.run_until_idle();
        assert_eq!(*got.borrow(), Some(Ok("served".into())));
    }

    #[test]
    fn call_service_gives_up_after_retries() {
        let mut sim = Sim::new(1);
        let rpc = layer(&mut sim);
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        rpc.call_service(
            &mut sim,
            Addr::new("c"),
            "ghost".into(),
            Rc::new(|_| None),
            "x".into(),
            SimDuration::from_millis(100),
            2,
            SimDuration::from_millis(10),
            move |_, r| *g.borrow_mut() = Some(r),
        );
        sim.run_until_idle();
        assert_eq!(
            *got.borrow(),
            Some(Err(RpcError::NoEndpoint("ghost".into())))
        );
    }

    #[test]
    fn endpoint_serves_and_calls_simultaneously() {
        // Regression: making an outbound call from a serving address must
        // not clobber its server registration (the API service calls the
        // LCM while serving users).
        let mut sim = Sim::new(1);
        let rpc = layer(&mut sim);
        rpc.serve(Addr::new("lcm"), |sim, _req: String, r| {
            r.ok(sim, "lcm-ok".into());
        });
        let middle = rpc.clone();
        rpc.serve(Addr::new("api"), move |sim, req: String, r| {
            if req == "ping" {
                r.ok(sim, "pong".into());
            } else {
                // Outbound call from the serving address.
                middle.call(
                    sim,
                    Addr::new("api"),
                    Addr::new("lcm"),
                    "deploy".into(),
                    SimDuration::from_secs(1),
                    move |sim, result| {
                        r.ok(sim, format!("forwarded:{}", result.unwrap()));
                    },
                );
            }
        });

        let first = Rc::new(RefCell::new(None));
        let f = first.clone();
        rpc.call(
            &mut sim,
            Addr::new("c"),
            Addr::new("api"),
            "submit".into(),
            SimDuration::from_secs(1),
            move |_, r| *f.borrow_mut() = Some(r),
        );
        sim.run_until_idle();
        assert_eq!(*first.borrow(), Some(Ok("forwarded:lcm-ok".into())));

        // The address must still serve AFTER having made an outbound call.
        let second = Rc::new(RefCell::new(None));
        let s = second.clone();
        rpc.call(
            &mut sim,
            Addr::new("c"),
            Addr::new("api"),
            "ping".into(),
            SimDuration::from_secs(1),
            move |_, r| *s.borrow_mut() = Some(r),
        );
        sim.run_until_idle();
        assert_eq!(*second.borrow(), Some(Ok("pong".into())));
    }

    #[test]
    fn stop_serving_then_reserve_restores_service() {
        let mut sim = Sim::new(2);
        let rpc = layer(&mut sim);
        rpc.serve(Addr::new("s"), |sim, _req: String, r| {
            r.ok(sim, "v1".into());
        });
        rpc.stop_serving(&Addr::new("s"));
        let dead = Rc::new(RefCell::new(None));
        let d = dead.clone();
        rpc.call(
            &mut sim,
            Addr::new("c"),
            Addr::new("s"),
            "x".into(),
            SimDuration::from_millis(50),
            move |_, r| *d.borrow_mut() = Some(r),
        );
        sim.run_until_idle();
        assert_eq!(*dead.borrow(), Some(Err(RpcError::Timeout)));

        rpc.serve(Addr::new("s"), |sim, _req: String, r| {
            r.ok(sim, "v2".into());
        });
        let live = Rc::new(RefCell::new(None));
        let l = live.clone();
        rpc.call(
            &mut sim,
            Addr::new("c"),
            Addr::new("s"),
            "x".into(),
            SimDuration::from_secs(1),
            move |_, r| *l.borrow_mut() = Some(r),
        );
        sim.run_until_idle();
        assert_eq!(*live.borrow(), Some(Ok("v2".into())));
    }

    #[test]
    fn round_robin_rotates_and_skips_unhealthy() {
        let rr = RoundRobin::new();
        assert!(rr.is_empty());
        assert_eq!(rr.next(), None);
        rr.add(Addr::new("a"));
        rr.add(Addr::new("b"));
        rr.add(Addr::new("a")); // duplicate ignored
        assert_eq!(rr.len(), 2);
        assert_eq!(rr.next(), Some(Addr::new("a")));
        assert_eq!(rr.next(), Some(Addr::new("b")));
        rr.set_healthy(&Addr::new("b"), false);
        assert_eq!(rr.next(), Some(Addr::new("a")));
        assert_eq!(rr.next(), Some(Addr::new("a")));
        rr.set_healthy(&Addr::new("b"), true);
        rr.remove(&Addr::new("a"));
        assert_eq!(rr.next(), Some(Addr::new("b")));
    }

    #[test]
    fn concurrent_calls_correlate_correctly() {
        let mut sim = Sim::new(1);
        let rpc: RpcLayer<u32, u32> = RpcLayer::new(
            &mut sim,
            LatencyModel::Uniform(SimDuration::from_millis(1), SimDuration::from_millis(20)),
        );
        rpc.serve(Addr::new("sq"), |sim, req, r| r.ok(sim, req * req));
        let results = Rc::new(RefCell::new(Vec::new()));
        for i in 0..20u32 {
            let res = results.clone();
            rpc.call(
                &mut sim,
                Addr::new("c"),
                Addr::new("sq"),
                i,
                SimDuration::from_secs(1),
                move |_, r| res.borrow_mut().push((i, r.unwrap())),
            );
        }
        sim.run_until_idle();
        let results = results.borrow();
        assert_eq!(results.len(), 20);
        for (i, sq) in results.iter() {
            assert_eq!(*sq, i * i);
        }
    }
}
