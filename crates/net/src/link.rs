//! Shared-bandwidth links for bulk transfers.
//!
//! Control-plane messages are latency-dominated and use [`crate::Net`];
//! bulk transfers (training data streaming, checkpoints, result uploads)
//! are bandwidth-dominated and use [`SharedLink`]: a serialized pipe with a
//! fixed byte rate. Concurrent transfers queue behind each other, which is
//! how a 1 GbE NIC behaves under the paper's data-streaming workload.

use std::cell::RefCell;
use std::rc::Rc;

use dlaas_sim::{SimDuration, SimTime};

/// Common link speeds, in bytes per second.
pub mod speeds {
    /// 1 Gb Ethernet ≈ 117 MiB/s of goodput.
    pub const GBE_1: f64 = 117.0 * 1024.0 * 1024.0;
    /// 10 Gb Ethernet ≈ 1.1 GiB/s of goodput.
    pub const GBE_10: f64 = 1.15 * 1024.0 * 1024.0 * 1024.0;
    /// NFS over the cluster network, accounting for protocol overhead.
    pub const NFS: f64 = 90.0 * 1024.0 * 1024.0;
}

#[derive(Debug)]
struct LinkState {
    bytes_per_sec: f64,
    busy_until: SimTime,
    total_bytes: u64,
    transfers: u64,
}

/// A serialized, fixed-rate pipe. Cloning shares the underlying link.
///
/// # Examples
///
/// ```
/// use dlaas_net::SharedLink;
/// use dlaas_sim::SimTime;
///
/// // 100 bytes/sec link, two back-to-back 50-byte transfers.
/// let link = SharedLink::new(100.0);
/// let t1 = link.reserve(SimTime::ZERO, 50);
/// let t2 = link.reserve(SimTime::ZERO, 50);
/// assert_eq!(t1.end, SimTime::from_millis(500));
/// assert_eq!(t2.start, t1.end); // queued behind the first
/// assert_eq!(t2.end, SimTime::from_secs(1));
/// ```
#[derive(Debug, Clone)]
pub struct SharedLink {
    state: Rc<RefCell<LinkState>>,
}

/// The window a transfer occupies on a [`SharedLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the transfer begins moving bytes.
    pub start: SimTime,
    /// When the last byte arrives.
    pub end: SimTime,
}

impl Transfer {
    /// Total time from request to completion.
    pub fn duration_from(&self, requested_at: SimTime) -> SimDuration {
        self.end.saturating_duration_since(requested_at)
    }
}

impl SharedLink {
    /// Creates a link with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive and finite.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "invalid link rate: {bytes_per_sec}"
        );
        SharedLink {
            state: Rc::new(RefCell::new(LinkState {
                bytes_per_sec,
                busy_until: SimTime::ZERO,
                total_bytes: 0,
                transfers: 0,
            })),
        }
    }

    /// The link rate in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.state.borrow().bytes_per_sec
    }

    /// Reserves the link for a `bytes`-long transfer requested at `now`,
    /// returning the window it occupies. Zero-byte transfers complete
    /// instantly (after any queueing).
    pub fn reserve(&self, now: SimTime, bytes: u64) -> Transfer {
        let mut s = self.state.borrow_mut();
        let start = s.busy_until.max(now);
        let secs = bytes as f64 / s.bytes_per_sec;
        let end = start + SimDuration::from_secs_f64(secs);
        s.busy_until = end;
        s.total_bytes += bytes;
        s.transfers += 1;
        Transfer { start, end }
    }

    /// Pure transfer time for `bytes` at this link's rate, ignoring queueing.
    pub fn nominal_duration(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec())
    }

    /// Total bytes ever reserved.
    pub fn total_bytes(&self) -> u64 {
        self.state.borrow().total_bytes
    }

    /// Number of transfers ever reserved.
    pub fn transfers(&self) -> u64 {
        self.state.borrow().transfers
    }

    /// Instant at which the link becomes free given current reservations.
    pub fn busy_until(&self) -> SimTime {
        self.state.borrow().busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_duration() {
        let link = SharedLink::new(1000.0);
        let t = link.reserve(SimTime::ZERO, 500);
        assert_eq!(t.start, SimTime::ZERO);
        assert_eq!(t.end, SimTime::from_millis(500));
        assert_eq!(
            t.duration_from(SimTime::ZERO),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn transfers_serialize() {
        let link = SharedLink::new(1000.0);
        let a = link.reserve(SimTime::ZERO, 1000);
        let b = link.reserve(SimTime::ZERO, 1000);
        assert_eq!(a.end, SimTime::from_secs(1));
        assert_eq!(b.start, SimTime::from_secs(1));
        assert_eq!(b.end, SimTime::from_secs(2));
        assert_eq!(link.total_bytes(), 2000);
        assert_eq!(link.transfers(), 2);
    }

    #[test]
    fn idle_link_starts_at_request_time() {
        let link = SharedLink::new(1000.0);
        let t = link.reserve(SimTime::from_secs(10), 100);
        assert_eq!(t.start, SimTime::from_secs(10));
        assert_eq!(
            t.end,
            SimTime::from_secs(10) + SimDuration::from_millis(100)
        );
    }

    #[test]
    fn zero_bytes_instant() {
        let link = SharedLink::new(1000.0);
        let t = link.reserve(SimTime::from_secs(1), 0);
        assert_eq!(t.start, t.end);
    }

    #[test]
    fn clones_share_capacity() {
        let link = SharedLink::new(1000.0);
        let clone = link.clone();
        link.reserve(SimTime::ZERO, 1000);
        let t = clone.reserve(SimTime::ZERO, 1000);
        assert_eq!(t.start, SimTime::from_secs(1));
    }

    #[test]
    fn nominal_duration_ignores_queue() {
        let link = SharedLink::new(2000.0);
        link.reserve(SimTime::ZERO, 10_000);
        assert_eq!(link.nominal_duration(1000), SimDuration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "invalid link rate")]
    fn zero_rate_panics() {
        let _ = SharedLink::new(0.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn speed_constants_ordered() {
        assert!(speeds::GBE_1 < speeds::GBE_10);
        assert!(speeds::NFS < speeds::GBE_1);
    }
}
