//! # dlaas-net — simulated datacenter network
//!
//! The communication substrate for the DLaaS reproduction, replacing the
//! real datacenter network + GRPC of the paper:
//!
//! * [`Net`] — typed message passing between named endpoints ([`Addr`])
//!   with modelled latency ([`LatencyModel`]), random loss, endpoint
//!   up/down state and partitions. Used by the Raft/etcd cluster.
//! * [`RpcLayer`] — request/response with deadlines, retries and
//!   service resolution, mirroring the GRPC calls between DLaaS
//!   microservices. [`RoundRobin`] is the standalone load balancer.
//! * [`SharedLink`] — serialized fixed-rate pipes for bulk transfers
//!   (training-data streaming, checkpoints), used by the object store.
//!
//! # Examples
//!
//! ```
//! use dlaas_net::{Addr, LatencyModel, Net};
//! use dlaas_sim::Sim;
//!
//! let mut sim = Sim::new(0);
//! let net: Net<&'static str> = Net::new(&mut sim, LatencyModel::datacenter());
//! net.register(Addr::new("api"), |sim, env| {
//!     sim.record("api", format!("got {} from {}", env.msg, env.from));
//! });
//! net.send(&mut sim, Addr::new("client"), Addr::new("api"), "submit");
//! sim.run_until_idle();
//! assert_eq!(net.stats().delivered, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod latency;
mod link;
mod network;
mod rpc;

pub use addr::Addr;
pub use latency::LatencyModel;
pub use link::{speeds, SharedLink, Transfer};
pub use network::{Envelope, Net, NetStats};
pub use rpc::{Resolver, Responder, RoundRobin, RpcError, RpcFrame, RpcLayer};
