//! Network addresses.

use std::fmt;

/// The address of a network endpoint.
///
/// Addresses are opaque strings by convention structured as
/// `"<node>/<process>"` (e.g. `"node-2/etcd-0"`, `"node-0/api-1"`), but the
/// network layer itself attaches no meaning to the structure.
///
/// # Examples
///
/// ```
/// use dlaas_net::Addr;
///
/// let a = Addr::new("node-1/api-0");
/// assert_eq!(a.as_str(), "node-1/api-0");
/// assert_eq!(a, Addr::from("node-1/api-0"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(String);

impl Addr {
    /// Creates an address from any string-like value.
    pub fn new(s: impl Into<String>) -> Self {
        Addr(s.into())
    }

    /// The address as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Addr {
    fn from(s: &str) -> Self {
        Addr(s.to_owned())
    }
}

impl From<String> for Addr {
    fn from(s: String) -> Self {
        Addr(s)
    }
}

impl AsRef<str> for Addr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Addr::new("x/y");
        assert_eq!(a, Addr::from("x/y".to_string()));
        assert_eq!(a.as_str(), "x/y");
        assert_eq!(format!("{a}"), "x/y");
        assert_ne!(a, Addr::new("x/z"));
    }

    #[test]
    fn usable_as_map_key() {
        // This test exists to prove Addr's Hash impl works; the hashed
        // map never iterates, so determinism is not at stake.
        #[allow(clippy::disallowed_types)]
        let mut m = std::collections::HashMap::new();
        m.insert(Addr::new("a"), 1);
        assert_eq!(m.get(&Addr::new("a")), Some(&1));
    }
}
