//! The simulated message network.
//!
//! [`Net`] connects named endpoints (see [`Addr`]) and delivers typed
//! messages between them with modelled latency, optional loss, endpoint
//! up/down state, and partitions. It is a cheap-to-clone handle over shared
//! state, so components capture a clone in their event callbacks.
//!
//! Delivery semantics follow the asynchronous-network model used by the
//! paper's substrates (GRPC over a datacenter network, etcd's Raft):
//! messages may be delayed, dropped, or reordered (by unequal latency), but
//! are never corrupted or duplicated by the network itself.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

use dlaas_sim::{Sim, SimRng, SimTime};

use crate::{Addr, LatencyModel};

/// A message in flight, as seen by the receiving handler.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sender address.
    pub from: Addr,
    /// Receiver address.
    pub to: Addr,
    /// When the message was sent.
    pub sent_at: SimTime,
    /// The payload.
    pub msg: M,
}

/// Counters describing network activity so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages passed to [`Net::send`].
    pub sent: u64,
    /// Messages delivered to a handler.
    pub delivered: u64,
    /// Messages dropped by the random-loss model.
    pub dropped_loss: u64,
    /// Messages dropped because sender and receiver were partitioned.
    pub dropped_partition: u64,
    /// Messages dropped because the receiver was down or unregistered.
    pub dropped_down: u64,
}

type Handler<M> = Rc<dyn Fn(&mut Sim, Envelope<M>)>;

struct Endpoint<M> {
    handler: Handler<M>,
    up: bool,
}

struct State<M> {
    endpoints: BTreeMap<Addr, Endpoint<M>>,
    latency: LatencyModel,
    loss: f64,
    blocked_pairs: BTreeSet<(Addr, Addr)>,
    groups: Vec<BTreeSet<Addr>>,
    rng: SimRng,
    stats: NetStats,
}

impl<M> State<M> {
    /// `true` when traffic `from → to` is currently blocked by a partition.
    fn partitioned(&self, from: &Addr, to: &Addr) -> bool {
        if self.blocked_pairs.contains(&(from.clone(), to.clone())) {
            return true;
        }
        if self.groups.is_empty() {
            return false;
        }
        let gf = self.groups.iter().position(|g| g.contains(from));
        let gt = self.groups.iter().position(|g| g.contains(to));
        match (gf, gt) {
            // Both sides belong to groups: blocked iff different groups.
            (Some(a), Some(b)) => a != b,
            // An address outside every group is unaffected by the partition.
            _ => false,
        }
    }
}

/// Handle to the simulated network carrying messages of type `M`.
///
/// # Examples
///
/// ```
/// use dlaas_net::{Addr, LatencyModel, Net};
/// use dlaas_sim::{Sim, SimDuration};
/// use std::{cell::RefCell, rc::Rc};
///
/// let mut sim = Sim::new(1);
/// let net: Net<String> = Net::new(&mut sim, LatencyModel::Fixed(SimDuration::from_millis(1)));
///
/// let seen = Rc::new(RefCell::new(Vec::new()));
/// let s = seen.clone();
/// net.register(Addr::new("b"), move |_sim, env| {
///     s.borrow_mut().push(env.msg);
/// });
///
/// net.send(&mut sim, Addr::new("a"), Addr::new("b"), "hello".to_string());
/// sim.run_until_idle();
/// assert_eq!(*seen.borrow(), vec!["hello".to_string()]);
/// ```
pub struct Net<M> {
    state: Rc<RefCell<State<M>>>,
}

impl<M> Clone for Net<M> {
    fn clone(&self) -> Self {
        Net {
            state: self.state.clone(),
        }
    }
}

impl<M> fmt::Debug for Net<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.borrow();
        f.debug_struct("Net")
            .field("endpoints", &s.endpoints.len())
            .field("loss", &s.loss)
            .field("stats", &s.stats)
            .finish()
    }
}

impl<M: 'static> Net<M> {
    /// Creates a network with the given default latency model and no loss.
    pub fn new(sim: &mut Sim, latency: LatencyModel) -> Self {
        let rng = sim.rng().fork("net");
        Net {
            state: Rc::new(RefCell::new(State {
                endpoints: BTreeMap::new(),
                latency,
                loss: 0.0,
                blocked_pairs: BTreeSet::new(),
                groups: Vec::new(),
                rng,
                stats: NetStats::default(),
            })),
        }
    }

    /// Registers (or replaces) the handler for `addr` and marks it up.
    pub fn register(&self, addr: Addr, handler: impl Fn(&mut Sim, Envelope<M>) + 'static) {
        self.state.borrow_mut().endpoints.insert(
            addr,
            Endpoint {
                handler: Rc::new(handler),
                up: true,
            },
        );
    }

    /// Removes the endpoint entirely; in-flight messages to it are dropped
    /// at delivery time.
    pub fn unregister(&self, addr: &Addr) {
        self.state.borrow_mut().endpoints.remove(addr);
    }

    /// Marks an endpoint up or down without removing its handler. Messages
    /// to a down endpoint are dropped at delivery time (a crashed process
    /// does not receive traffic).
    pub fn set_up(&self, addr: &Addr, up: bool) {
        if let Some(ep) = self.state.borrow_mut().endpoints.get_mut(addr) {
            ep.up = up;
        }
    }

    /// `true` if `addr` is registered and up.
    pub fn is_up(&self, addr: &Addr) -> bool {
        self.state
            .borrow()
            .endpoints
            .get(addr)
            .is_some_and(|e| e.up)
    }

    /// Sets the probability in `[0, 1]` that any message is silently lost.
    pub fn set_loss(&self, p: f64) {
        self.state.borrow_mut().loss = p.clamp(0.0, 1.0);
    }

    /// Replaces the latency model for all messages sent from now on.
    /// Messages already in flight keep their sampled delay (fault windows
    /// degrade new traffic, they do not rewrite history).
    pub fn set_latency(&self, model: LatencyModel) {
        self.state.borrow_mut().latency = model;
    }

    /// The current latency model (so a fault window can restore it).
    pub fn latency(&self) -> LatencyModel {
        self.state.borrow().latency.clone()
    }

    /// Number of registered endpoints (leak diagnostics).
    pub fn endpoint_count(&self) -> usize {
        self.state.borrow().endpoints.len()
    }

    /// Addresses of all registered endpoints, sorted (leak diagnostics).
    pub fn endpoint_addrs(&self) -> Vec<Addr> {
        let mut addrs: Vec<Addr> = self.state.borrow().endpoints.keys().cloned().collect();
        addrs.sort();
        addrs
    }

    /// Blocks traffic in **both** directions between `a` and `b`.
    pub fn block_pair(&self, a: Addr, b: Addr) {
        let mut s = self.state.borrow_mut();
        s.blocked_pairs.insert((a.clone(), b.clone()));
        s.blocked_pairs.insert((b, a));
    }

    /// Removes a pairwise block installed by [`Net::block_pair`].
    pub fn unblock_pair(&self, a: &Addr, b: &Addr) {
        let mut s = self.state.borrow_mut();
        s.blocked_pairs.remove(&(a.clone(), b.clone()));
        s.blocked_pairs.remove(&(b.clone(), a.clone()));
    }

    /// Installs a group partition: traffic between addresses in different
    /// groups is blocked; addresses not mentioned are unaffected. Replaces
    /// any previous group partition.
    pub fn partition(&self, groups: Vec<Vec<Addr>>) {
        self.state.borrow_mut().groups = groups
            .into_iter()
            .map(|g| g.into_iter().collect())
            .collect();
    }

    /// Removes the group partition and all pairwise blocks.
    pub fn heal(&self) {
        let mut s = self.state.borrow_mut();
        s.groups.clear();
        s.blocked_pairs.clear();
    }

    /// Activity counters.
    pub fn stats(&self) -> NetStats {
        self.state.borrow().stats
    }

    /// Sends `msg` from `from` to `to`.
    ///
    /// The message is dropped (with the appropriate counter bumped) if the
    /// pair is partitioned at send time, the loss model fires, or the
    /// receiver is down/unregistered at delivery time.
    pub fn send(&self, sim: &mut Sim, from: Addr, to: Addr, msg: M) {
        let delay = {
            let mut s = self.state.borrow_mut();
            s.stats.sent += 1;
            if s.partitioned(&from, &to) {
                s.stats.dropped_partition += 1;
                return;
            }
            let loss = s.loss;
            if loss > 0.0 && s.rng.chance(loss) {
                s.stats.dropped_loss += 1;
                return;
            }
            let model = s.latency.clone();
            model.sample(&mut s.rng)
        };
        let net = self.clone();
        let sent_at = sim.now();
        sim.schedule_in(delay, move |sim| {
            net.deliver(
                sim,
                Envelope {
                    from,
                    to,
                    sent_at,
                    msg,
                },
            );
        });
    }

    fn deliver(&self, sim: &mut Sim, env: Envelope<M>) {
        let handler = {
            let mut s = self.state.borrow_mut();
            // A partition installed while the message was in flight also
            // blocks delivery (the TCP connection is cut).
            if s.partitioned(&env.from, &env.to) {
                s.stats.dropped_partition += 1;
                return;
            }
            let handler = match s.endpoints.get(&env.to) {
                Some(ep) if ep.up => Some(ep.handler.clone()),
                _ => None,
            };
            match handler {
                Some(h) => {
                    s.stats.delivered += 1;
                    h
                }
                None => {
                    s.stats.dropped_down += 1;
                    return;
                }
            }
        };
        handler(sim, env);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlaas_sim::SimDuration;

    fn fixed_net(sim: &mut Sim, ms: u64) -> Net<u32> {
        Net::new(sim, LatencyModel::Fixed(SimDuration::from_millis(ms)))
    }

    fn collector(net: &Net<u32>, addr: &str) -> Rc<RefCell<Vec<u32>>> {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s = seen.clone();
        net.register(Addr::new(addr), move |_, env| s.borrow_mut().push(env.msg));
        seen
    }

    #[test]
    fn delivers_with_latency() {
        let mut sim = Sim::new(1);
        let net = fixed_net(&mut sim, 5);
        let seen = collector(&net, "b");
        net.send(&mut sim, Addr::new("a"), Addr::new("b"), 42);
        sim.run_until_idle();
        assert_eq!(*seen.borrow(), vec![42]);
        assert_eq!(sim.now(), dlaas_sim::SimTime::from_millis(5));
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn unknown_endpoint_drops() {
        let mut sim = Sim::new(1);
        let net = fixed_net(&mut sim, 1);
        net.send(&mut sim, Addr::new("a"), Addr::new("ghost"), 1);
        sim.run_until_idle();
        assert_eq!(net.stats().dropped_down, 1);
        assert_eq!(net.stats().delivered, 0);
    }

    #[test]
    fn down_endpoint_drops_until_back_up() {
        let mut sim = Sim::new(1);
        let net = fixed_net(&mut sim, 1);
        let seen = collector(&net, "b");
        net.set_up(&Addr::new("b"), false);
        assert!(!net.is_up(&Addr::new("b")));
        net.send(&mut sim, Addr::new("a"), Addr::new("b"), 1);
        sim.run_until_idle();
        assert!(seen.borrow().is_empty());

        net.set_up(&Addr::new("b"), true);
        net.send(&mut sim, Addr::new("a"), Addr::new("b"), 2);
        sim.run_until_idle();
        assert_eq!(*seen.borrow(), vec![2]);
    }

    #[test]
    fn crash_mid_flight_drops_at_delivery() {
        let mut sim = Sim::new(1);
        let net = fixed_net(&mut sim, 10);
        let seen = collector(&net, "b");
        net.send(&mut sim, Addr::new("a"), Addr::new("b"), 7);
        // The endpoint goes down while the message is in flight.
        let net2 = net.clone();
        sim.schedule_in(SimDuration::from_millis(5), move |_| {
            net2.set_up(&Addr::new("b"), false);
        });
        sim.run_until_idle();
        assert!(seen.borrow().is_empty());
        assert_eq!(net.stats().dropped_down, 1);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut sim = Sim::new(1);
        let net = fixed_net(&mut sim, 1);
        let seen = collector(&net, "b");
        net.set_loss(1.0);
        for i in 0..10 {
            net.send(&mut sim, Addr::new("a"), Addr::new("b"), i);
        }
        sim.run_until_idle();
        assert!(seen.borrow().is_empty());
        assert_eq!(net.stats().dropped_loss, 10);
    }

    #[test]
    fn partial_loss_drops_some() {
        let mut sim = Sim::new(2);
        let net = fixed_net(&mut sim, 1);
        let seen = collector(&net, "b");
        net.set_loss(0.5);
        for i in 0..200 {
            net.send(&mut sim, Addr::new("a"), Addr::new("b"), i);
        }
        sim.run_until_idle();
        let n = seen.borrow().len();
        assert!((60..140).contains(&n), "delivered {n}");
    }

    #[test]
    fn pair_block_is_bidirectional_and_healable() {
        let mut sim = Sim::new(1);
        let net = fixed_net(&mut sim, 1);
        let sa = collector(&net, "a");
        let sb = collector(&net, "b");
        net.block_pair(Addr::new("a"), Addr::new("b"));
        net.send(&mut sim, Addr::new("a"), Addr::new("b"), 1);
        net.send(&mut sim, Addr::new("b"), Addr::new("a"), 2);
        sim.run_until_idle();
        assert!(sa.borrow().is_empty() && sb.borrow().is_empty());
        assert_eq!(net.stats().dropped_partition, 2);

        net.unblock_pair(&Addr::new("a"), &Addr::new("b"));
        net.send(&mut sim, Addr::new("a"), Addr::new("b"), 3);
        sim.run_until_idle();
        assert_eq!(*sb.borrow(), vec![3]);
    }

    #[test]
    fn group_partition_blocks_cross_group_only() {
        let mut sim = Sim::new(1);
        let net = fixed_net(&mut sim, 1);
        let sa = collector(&net, "a");
        let sb = collector(&net, "b");
        let sc = collector(&net, "c");
        net.partition(vec![
            vec![Addr::new("a"), Addr::new("b")],
            vec![Addr::new("c")],
        ]);
        net.send(&mut sim, Addr::new("a"), Addr::new("b"), 1); // same group
        net.send(&mut sim, Addr::new("a"), Addr::new("c"), 2); // cross group
        net.send(&mut sim, Addr::new("c"), Addr::new("a"), 3); // cross group
                                                               // "d" is outside the partition spec: unaffected.
        net.send(&mut sim, Addr::new("d"), Addr::new("a"), 4);
        sim.run_until_idle();
        assert_eq!(*sb.borrow(), vec![1]);
        assert!(sc.borrow().is_empty());
        assert_eq!(*sa.borrow(), vec![4]);

        net.heal();
        net.send(&mut sim, Addr::new("a"), Addr::new("c"), 5);
        sim.run_until_idle();
        assert_eq!(*sc.borrow(), vec![5]);
    }

    #[test]
    fn partition_installed_mid_flight_blocks_delivery() {
        let mut sim = Sim::new(1);
        let net = fixed_net(&mut sim, 10);
        let seen = collector(&net, "b");
        net.send(&mut sim, Addr::new("a"), Addr::new("b"), 1);
        let net2 = net.clone();
        sim.schedule_in(SimDuration::from_millis(3), move |_| {
            net2.partition(vec![vec![Addr::new("a")], vec![Addr::new("b")]]);
        });
        sim.run_until_idle();
        assert!(seen.borrow().is_empty());
    }

    #[test]
    fn set_latency_affects_new_sends_only() {
        let mut sim = Sim::new(1);
        let net = fixed_net(&mut sim, 1);
        let seen = collector(&net, "b");
        net.send(&mut sim, Addr::new("a"), Addr::new("b"), 1); // 1 ms
        net.set_latency(LatencyModel::Fixed(SimDuration::from_millis(50)));
        net.send(&mut sim, Addr::new("a"), Addr::new("b"), 2); // 50 ms
        sim.run_until(dlaas_sim::SimTime::from_millis(10));
        assert_eq!(*seen.borrow(), vec![1], "in-flight kept its old delay");
        sim.run_until_idle();
        assert_eq!(*seen.borrow(), vec![1, 2]);
        assert_eq!(sim.now(), dlaas_sim::SimTime::from_millis(50));
        // The old model can be read back and restored.
        net.set_latency(LatencyModel::Fixed(SimDuration::from_millis(1)));
        match net.latency() {
            LatencyModel::Fixed(d) => assert_eq!(d, SimDuration::from_millis(1)),
            other => panic!("unexpected model: {other:?}"),
        }
    }

    #[test]
    fn endpoint_accounting() {
        let mut sim = Sim::new(1);
        let net = fixed_net(&mut sim, 1);
        assert_eq!(net.endpoint_count(), 0);
        let _a = collector(&net, "a");
        let _b = collector(&net, "b");
        let _b2 = collector(&net, "b"); // replaces, no growth
        assert_eq!(net.endpoint_count(), 2);
        assert_eq!(net.endpoint_addrs(), vec![Addr::new("a"), Addr::new("b")]);
        net.unregister(&Addr::new("a"));
        assert_eq!(net.endpoint_count(), 1);
    }

    #[test]
    fn handlers_can_reply() {
        let mut sim = Sim::new(1);
        let net: Net<u32> = fixed_net(&mut sim, 1);
        // "server" echoes incremented value back to sender.
        let net_for_server = net.clone();
        net.register(Addr::new("server"), move |sim, env| {
            net_for_server.send(sim, env.to.clone(), env.from.clone(), env.msg + 1);
        });
        let seen = collector(&net, "client");
        net.send(&mut sim, Addr::new("client"), Addr::new("server"), 10);
        sim.run_until_idle();
        assert_eq!(*seen.borrow(), vec![11]);
    }

    #[test]
    fn reregistering_replaces_handler() {
        let mut sim = Sim::new(1);
        let net = fixed_net(&mut sim, 1);
        let first = collector(&net, "x");
        let second = collector(&net, "x"); // replaces the first handler
        net.send(&mut sim, Addr::new("a"), Addr::new("x"), 9);
        sim.run_until_idle();
        assert!(first.borrow().is_empty());
        assert_eq!(*second.borrow(), vec![9]);
    }

    #[test]
    fn unregister_drops() {
        let mut sim = Sim::new(1);
        let net = fixed_net(&mut sim, 1);
        let seen = collector(&net, "b");
        net.unregister(&Addr::new("b"));
        net.send(&mut sim, Addr::new("a"), Addr::new("b"), 1);
        sim.run_until_idle();
        assert!(seen.borrow().is_empty());
    }
}
