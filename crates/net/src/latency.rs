//! Message latency models.

use dlaas_sim::{SimDuration, SimRng};

/// How long a message takes from send to delivery.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Always exactly this long.
    Fixed(SimDuration),
    /// Uniform in `[lo, hi)`.
    Uniform(SimDuration, SimDuration),
    /// Uniform in `[lo, hi)` with probability `1 - spike_p`, otherwise a
    /// spike uniform in `[hi, hi * spike_factor)` — models datacenter tail
    /// latency.
    Spiky {
        /// Lower bound of the common case.
        lo: SimDuration,
        /// Upper bound of the common case.
        hi: SimDuration,
        /// Probability of a tail-latency spike.
        spike_p: f64,
        /// Spike upper bound as a multiple of `hi`.
        spike_factor: f64,
    },
}

impl LatencyModel {
    /// A typical intra-datacenter model: 0.2–0.6 ms with 1% spikes up to ~3 ms.
    pub fn datacenter() -> Self {
        LatencyModel::Spiky {
            lo: SimDuration::from_micros(200),
            hi: SimDuration::from_micros(600),
            spike_p: 0.01,
            spike_factor: 5.0,
        }
    }

    /// A loopback model for co-located processes: 30–80 µs.
    pub fn local() -> Self {
        LatencyModel::Uniform(SimDuration::from_micros(30), SimDuration::from_micros(80))
    }

    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform(lo, hi) => sample_uniform(rng, lo, hi),
            LatencyModel::Spiky {
                lo,
                hi,
                spike_p,
                spike_factor,
            } => {
                if rng.chance(spike_p) {
                    sample_uniform(rng, hi, hi.mul_f64(spike_factor))
                } else {
                    sample_uniform(rng, lo, hi)
                }
            }
        }
    }
}

fn sample_uniform(rng: &mut SimRng, lo: SimDuration, hi: SimDuration) -> SimDuration {
    if hi <= lo {
        lo
    } else {
        rng.duration_between(lo, hi)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::datacenter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_exact() {
        let mut rng = SimRng::new(1);
        let m = LatencyModel::Fixed(SimDuration::from_millis(3));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(3));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::new(2);
        let lo = SimDuration::from_micros(100);
        let hi = SimDuration::from_micros(200);
        let m = LatencyModel::Uniform(lo, hi);
        for _ in 0..200 {
            let s = m.sample(&mut rng);
            assert!(s >= lo && s < hi, "{s}");
        }
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let mut rng = SimRng::new(3);
        let d = SimDuration::from_micros(50);
        assert_eq!(LatencyModel::Uniform(d, d).sample(&mut rng), d);
    }

    #[test]
    fn spiky_produces_occasional_spikes() {
        let mut rng = SimRng::new(4);
        let m = LatencyModel::Spiky {
            lo: SimDuration::from_micros(100),
            hi: SimDuration::from_micros(200),
            spike_p: 0.2,
            spike_factor: 10.0,
        };
        let samples: Vec<_> = (0..500).map(|_| m.sample(&mut rng)).collect();
        let spikes = samples
            .iter()
            .filter(|s| **s >= SimDuration::from_micros(200))
            .count();
        assert!(spikes > 40 && spikes < 200, "spikes={spikes}");
        assert!(samples.iter().all(|s| *s < SimDuration::from_micros(2000)));
    }

    #[test]
    fn presets_are_sane() {
        let mut rng = SimRng::new(5);
        assert!(LatencyModel::datacenter().sample(&mut rng) < SimDuration::from_millis(5));
        assert!(LatencyModel::local().sample(&mut rng) < SimDuration::from_micros(100));
    }
}
