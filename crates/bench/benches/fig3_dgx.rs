//! Criterion bench for the Fig. 3 experiment: regenerates the table once,
//! then benchmarks one DLaaS-vs-DGX cell.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dlaas_bench::fig3;
use dlaas_bench::harness::print_table;

fn regenerate_table() {
    let results = fig3::run_all(2018, 200);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.cell.model.to_string(),
                r.cell.gpus.to_string(),
                format!("{:.2}%", r.measured_pct),
                format!("{:.2}%", r.cell.paper_pct),
            ]
        })
        .collect();
    print_table(
        "Fig. 3 (bench regeneration, 200 iters)",
        &["Benchmark", "#GPUs", "ours", "paper"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("full_stack_cell_vgg16_2gpu_vs_dgx1", |b| {
        let cell = &fig3::cells()[5];
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(fig3::run_cell(seed, cell, 100))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
