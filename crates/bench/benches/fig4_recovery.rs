//! Criterion bench for the Fig. 4 experiment: regenerates the recovery
//! table once, then benchmarks single recovery measurements on a live
//! platform rig.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dlaas_bench::fig4::{self, Component};
use dlaas_bench::harness::print_table;

fn regenerate_table() {
    let run = fig4::run_all(2018, 3);
    let rows: Vec<Vec<String>> = run
        .results
        .iter()
        .map(|r| {
            vec![
                r.component.to_string(),
                r.stats.range_secs(),
                r.component.paper_range().to_owned(),
            ]
        })
        .collect();
    print_table(
        "Fig. 4 (bench regeneration, 3 trials)",
        &["Component", "ours", "paper"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);

    group.bench_function("api_recovery_measurement", |b| {
        let mut rig = fig4::rig(77);
        b.iter(|| black_box(fig4::measure_once(&mut rig, Component::Api)));
    });
    group.bench_function("learner_recovery_measurement", |b| {
        let mut rig = fig4::rig(78);
        b.iter(|| black_box(fig4::measure_once(&mut rig, Component::Learner)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
