//! Criterion bench for the Fig. 2 experiment: regenerates the table once,
//! then benchmarks the cost of one full-stack cell (a complete simulated
//! training job through the platform).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dlaas_bench::fig2;
use dlaas_bench::harness::print_table;

fn regenerate_table() {
    let results = fig2::run_all(2018, 200);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.cell.model.to_string(),
                r.cell.framework.to_string(),
                r.cell.gpus.to_string(),
                format!("{:.2}%", r.measured_pct),
                format!("{:.2}%", r.cell.paper_pct),
            ]
        })
        .collect();
    print_table(
        "Fig. 2 (bench regeneration, 200 iters)",
        &["Benchmark", "Framework", "#GPUs", "ours", "paper"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("full_stack_cell_vgg16_caffe_1gpu", |b| {
        let cell = &fig2::cells()[0];
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(fig2::run_cell(seed, cell, 100))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
