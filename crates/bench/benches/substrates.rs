//! Microbenchmarks of the substrates themselves: Raft commit throughput,
//! etcd round trips, document-store queries, Kubernetes scheduling, and
//! the raw event-loop — the performance floor under every experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::rc::Rc;

use dlaas_docstore::{obj, DocStore, Filter, Update};
use dlaas_etcd::EtcdCluster;
use dlaas_kube::{BehaviorRegistry, ContainerSpec, ImageRef, Kube, KubeConfig, NodeSpec, PodSpec};
use dlaas_net::LatencyModel;
use dlaas_raft::{RaftCluster, RaftConfig};
use dlaas_sim::{Sim, SimDuration};

fn bench_sim_events(c: &mut Criterion) {
    c.bench_function("sim/100k_chained_events", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            sim.trace_mut().set_enabled(false);
            fn chain(sim: &mut Sim, left: u32) {
                if left > 0 {
                    sim.schedule_in(SimDuration::from_micros(10), move |sim| {
                        chain(sim, left - 1);
                    });
                }
            }
            chain(&mut sim, 100_000);
            black_box(sim.run_until_idle())
        });
    });
}

fn bench_raft(c: &mut Criterion) {
    c.bench_function("raft/1000_commits_3nodes", |b| {
        b.iter(|| {
            let mut sim = Sim::new(7);
            sim.trace_mut().set_enabled(false);
            let cluster: RaftCluster<u64> = RaftCluster::new(
                &mut sim,
                3,
                RaftConfig::default(),
                LatencyModel::datacenter(),
                Rc::new(|_id| Box::new(|_s, _i, _c| {})),
                0,
            );
            let leader = cluster.expect_leader(&mut sim, SimDuration::from_secs(10));
            for i in 0..1000u64 {
                let _ = cluster.node(leader).propose(&mut sim, i);
                if i % 50 == 0 {
                    sim.run_for(SimDuration::from_millis(20));
                }
            }
            sim.run_for(SimDuration::from_secs(2));
            black_box(cluster.node(leader).commit_index())
        });
    });
}

fn bench_etcd(c: &mut Criterion) {
    c.bench_function("etcd/200_puts_roundtrip", |b| {
        b.iter(|| {
            let mut sim = Sim::new(9);
            sim.trace_mut().set_enabled(false);
            let etcd = EtcdCluster::new_3way(&mut sim);
            etcd.expect_leader(&mut sim, SimDuration::from_secs(10));
            let client = etcd.client("bench");
            for i in 0..200 {
                client.put(&mut sim, format!("k{i}"), "v", |_s, _r| {});
            }
            sim.run_for(SimDuration::from_secs(5));
            black_box(etcd.kv_snapshot(0).len())
        });
    });
}

fn bench_docstore(c: &mut Criterion) {
    let mut db = DocStore::new();
    db.create_index("jobs", "status");
    for i in 0..10_000 {
        let status = match i % 5 {
            0 => "PENDING",
            1 => "DEPLOYING",
            2 => "PROCESSING",
            3 => "COMPLETED",
            _ => "FAILED",
        };
        db.insert(
            "jobs",
            obj! {"_id" => format!("j{i}"), "status" => status, "n" => i as i64},
        )
        .unwrap();
    }
    c.bench_function("docstore/indexed_find_10k_docs", |b| {
        b.iter(|| black_box(db.find("jobs", &Filter::eq("status", "PROCESSING")).len()));
    });
    c.bench_function("docstore/update_one_by_id", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(db.update_one(
                "jobs",
                &Filter::eq("_id", "j5000"),
                &Update::set("n", i as i64),
            ))
        });
    });
}

fn bench_kube(c: &mut Criterion) {
    c.bench_function("kube/schedule_200_pods", |b| {
        b.iter(|| {
            let mut sim = Sim::new(3);
            sim.trace_mut().set_enabled(false);
            let registry = BehaviorRegistry::new();
            registry.register_noop("pause");
            let kube = Kube::new(&mut sim, KubeConfig::default(), registry);
            for n in 0..20 {
                kube.add_node(NodeSpec::cpu(format!("n{n}"), 64_000, 262_144));
            }
            for i in 0..200 {
                kube.create_pod(
                    &mut sim,
                    PodSpec::new(
                        format!("p{i}"),
                        ContainerSpec::new("m", ImageRef::microservice("x"), "pause"),
                    ),
                );
            }
            sim.run_for(SimDuration::from_secs(30));
            black_box(kube.events().len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim_events, bench_raft, bench_etcd, bench_docstore, bench_kube
}
criterion_main!(benches);
