//! Figure 3: DLaaS (PCIe P100, containerized, data streamed) vs an
//! NVIDIA DGX-1 bare-metal server (SXM2 P100 with NVLink, local data),
//! TensorFlow benchmarks.
//!
//! Paper rows (difference in images/sec, %):
//!
//! | Benchmark   | GPUs | Paper  |
//! |-------------|------|--------|
//! | InceptionV3 | 1    | 3.30   |
//! | ResNet-50   | 1    | 7.07   |
//! | VGG-16      | 1    | 7.84   |
//! | InceptionV3 | 2    | 10.06  |
//! | ResNet-50   | 2    | 10.53  |
//! | VGG-16      | 2    | 13.69  |
//!
//! The shape to reproduce: the DGX-1 wins everywhere; its advantage
//! (a) grows with GPU count — NVLink vs PCIe gradient exchange — and
//! (b) is largest for communication-heavy models (VGG-16's 138 M
//! parameters), while remaining modest overall (≤ ~15%), which is the
//! paper's argument that commodity DLaaS hardware is cost-effective
//! against a 2–3× more expensive DGX-1.

use dlaas_gpu::{DlModel, ExecEnv, Framework, GpuKind};

use crate::harness::{
    bare_metal_images_per_sec, measure_dlaas_throughput, pct_diff, throughput_manifest,
};

/// One cell of the Fig. 3 table.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Cell {
    /// The benchmark network.
    pub model: DlModel,
    /// P100 GPUs used on each side (PCIe in DLaaS, SXM2 in the DGX-1).
    pub gpus: u32,
    /// The paper's reported difference (%).
    pub paper_pct: f64,
}

/// The six cells of the paper's table.
pub fn cells() -> Vec<Fig3Cell> {
    vec![
        Fig3Cell {
            model: DlModel::InceptionV3,
            gpus: 1,
            paper_pct: 3.30,
        },
        Fig3Cell {
            model: DlModel::Resnet50,
            gpus: 1,
            paper_pct: 7.07,
        },
        Fig3Cell {
            model: DlModel::Vgg16,
            gpus: 1,
            paper_pct: 7.84,
        },
        Fig3Cell {
            model: DlModel::InceptionV3,
            gpus: 2,
            paper_pct: 10.06,
        },
        Fig3Cell {
            model: DlModel::Resnet50,
            gpus: 2,
            paper_pct: 10.53,
        },
        Fig3Cell {
            model: DlModel::Vgg16,
            gpus: 2,
            paper_pct: 13.69,
        },
    ]
}

/// Result of reproducing one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Result {
    /// The cell.
    pub cell: Fig3Cell,
    /// DGX-1 throughput (images/sec).
    pub dgx1: f64,
    /// DLaaS throughput (images/sec).
    pub dlaas: f64,
    /// Measured deficit of DLaaS vs DGX-1 (%).
    pub measured_pct: f64,
}

/// Runs one cell: DLaaS through the full stack on PCIe P100s; the DGX-1
/// arm bare-metal on SXM2 P100s with NVLink and node-local data.
pub fn run_cell(seed: u64, cell: &Fig3Cell, iterations: u64) -> Fig3Result {
    let manifest = throughput_manifest(
        cell.model,
        Framework::TensorFlow,
        GpuKind::P100Pcie,
        cell.gpus,
        iterations,
    );
    let run = measure_dlaas_throughput(seed, manifest);
    let dlaas = run
        .images_per_sec
        .expect("fig3 job must complete and report throughput");
    let dgx1 = bare_metal_images_per_sec(
        seed,
        cell.model,
        Framework::TensorFlow,
        GpuKind::P100Sxm2,
        cell.gpus,
        ExecEnv::bare_metal(),
        0.015,
    );
    Fig3Result {
        cell: cell.clone(),
        dgx1,
        dlaas,
        measured_pct: pct_diff(dgx1, dlaas),
    }
}

/// Runs the whole table.
pub fn run_all(seed: u64, iterations: u64) -> Vec<Fig3Result> {
    cells()
        .iter()
        .map(|c| run_cell(seed, c, iterations))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgx_advantage_grows_with_gpus_and_stays_modest() {
        let one = run_cell(5, &cells()[2], 150); // VGG-16 x1
        let two = run_cell(5, &cells()[5], 150); // VGG-16 x2
        assert!(one.measured_pct > 0.0, "DGX-1 must win: {one:?}");
        assert!(
            two.measured_pct > one.measured_pct,
            "NVLink advantage must grow with GPUs: {one:?} vs {two:?}"
        );
        assert!(two.measured_pct < 20.0, "deficit must stay modest: {two:?}");
    }
}
