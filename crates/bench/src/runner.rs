//! The seed-parallel campaign runner.
//!
//! Every campaign in this repository — the fault matrix, the scale soak,
//! the multi-trial figure regenerations — is a list of *independent*
//! deterministic trials: each one builds its own [`Sim`](dlaas_sim::Sim)
//! from its own seed and never shares state with its neighbours. That is
//! the textbook embarrassingly-parallel shape (the same one FoundationDB
//! exploits for its deterministic-simulation campaigns), so the
//! [`CampaignRunner`] shards trials across a pool of OS threads while
//! preserving the property the rest of the workspace is built on: the
//! campaign's output is **byte-identical for any `--threads` value,
//! including 1**.
//!
//! Three design rules make that true:
//!
//! 1. **Parallelism stays outside the simulation.** A worker thread runs
//!    one whole trial at a time; no `Sim` is ever touched by two threads.
//!    The `dlaas-lint` `thread-spawn` rule forbids `std::thread` in every
//!    other non-test module of the workspace, so parallelism cannot leak
//!    into the deterministic core.
//! 2. **Deterministic sorted merge.** Workers complete in host-scheduler
//!    order, but records are merged by sorting on the trial id (the
//!    trial's position in the campaign's canonical enumeration). Every
//!    aggregate — tables, JSON artifacts, replayed metrics histograms —
//!    is derived from that sorted sequence only.
//! 3. **Wall-clock is reporting-only.** Per-trial host time is recorded
//!    into a [`Registry`] histogram (via the feature-gated
//!    `dlaas-obs` wall-clock stopwatch) so speedups are *measured*, but
//!    wall readings never enter byte-compared output.
//!
//! The runner also gives campaigns robustness teeth: a per-trial
//! **sim-time budget** (a trial whose simulation ran past the budget is
//! recorded as `TIMEOUT` instead of silently dominating the campaign),
//! and **panic capture** per worker — a crashed trial becomes a
//! structured failure record carrying the exact single-threaded repro
//! command, and the remaining trials still run.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use dlaas_obs::wallclock::WallTimer;
use dlaas_sim::{Registry, SimDuration};

/// Histogram of per-trial host wall-clock, labelled by campaign. Lives in
/// the runner's *reporting* registry — never in a trial's `Sim` registry —
/// so deterministic artifacts stay wall-free.
pub const TRIAL_WALL_SECONDS: &str = "bench_trial_wall_seconds";

/// One trial of a campaign: a stable label, the exact single-threaded
/// repro command, and the campaign-specific spec the trial function
/// consumes. Specs must be `Send` (they move to a worker thread) and are
/// typically `Clone` plain data — seed, fault plan, N.
#[derive(Debug, Clone)]
pub struct Trial<S> {
    /// Human-readable stable label (also the key in reports).
    pub label: String,
    /// Exact command reproducing this trial alone, single-threaded.
    pub repro: String,
    /// Campaign-specific inputs.
    pub spec: S,
}

/// What a trial function returns: the campaign result plus the final
/// simulated clock, which the runner checks against the sim-time budget.
#[derive(Debug, Clone)]
pub struct TrialRun<R> {
    /// The campaign-specific result.
    pub result: R,
    /// Total simulated time the trial consumed.
    pub sim_elapsed: SimDuration,
}

/// Terminal state of one trial.
#[derive(Debug, Clone)]
pub enum TrialOutcome<R> {
    /// The trial finished within its sim-time budget.
    Done(R),
    /// The trial finished but its simulation overran the budget; its
    /// result is withheld from aggregation so a runaway trial cannot
    /// skew campaign statistics unnoticed.
    Timeout {
        /// Simulated time the trial actually consumed.
        sim_elapsed: SimDuration,
        /// The budget it overran.
        budget: SimDuration,
    },
    /// The trial panicked; the panic was captured on the worker and
    /// converted into this structured record.
    Panicked {
        /// Rendered panic payload.
        message: String,
    },
}

/// One merged record of the campaign report.
#[derive(Debug, Clone)]
pub struct TrialRecord<R> {
    /// Trial id: the trial's position in the campaign's canonical
    /// enumeration. The merge sorts on this key.
    pub trial: usize,
    /// The trial's stable label.
    pub label: String,
    /// Exact single-threaded repro command.
    pub repro: String,
    /// How the trial ended.
    pub outcome: TrialOutcome<R>,
    /// Host seconds this trial took (reporting only; excluded from
    /// deterministic artifacts).
    pub wall_secs: f64,
}

impl<R> TrialRecord<R> {
    /// `true` when the trial did not produce a usable result.
    pub fn abnormal(&self) -> bool {
        !matches!(self.outcome, TrialOutcome::Done(_))
    }

    /// The result, when the trial completed within budget.
    pub fn result(&self) -> Option<&R> {
        match &self.outcome {
            TrialOutcome::Done(r) => Some(r),
            _ => None,
        }
    }

    /// One deterministic summary line (no wall-clock).
    pub fn describe(&self) -> String {
        match &self.outcome {
            TrialOutcome::Done(_) => format!("trial {} [{}]: done", self.trial, self.label),
            TrialOutcome::Timeout {
                sim_elapsed,
                budget,
            } => format!(
                "trial {} [{}]: TIMEOUT sim_elapsed={sim_elapsed} budget={budget}\n  repro: {}",
                self.trial, self.label, self.repro
            ),
            TrialOutcome::Panicked { message } => format!(
                "trial {} [{}]: PANIC {message}\n  repro: {}",
                self.trial, self.label, self.repro
            ),
        }
    }
}

/// The merged outcome of a campaign: records sorted by trial id plus the
/// runner's reporting registry (wall-clock histogram).
#[derive(Debug)]
pub struct CampaignReport<R> {
    /// One record per trial, sorted by trial id — byte-identical
    /// aggregation inputs at any thread count.
    pub records: Vec<TrialRecord<R>>,
    /// Worker threads the campaign ran on.
    pub threads: usize,
    /// Host seconds for the whole campaign (reporting only).
    pub wall_total_secs: f64,
    /// Reporting registry holding [`TRIAL_WALL_SECONDS`].
    pub wall_metrics: Registry,
}

impl<R> CampaignReport<R> {
    /// Records that timed out or panicked. A campaign with any of these
    /// must exit nonzero — CI is not allowed to go green over a dropped
    /// trial.
    pub fn abnormal(&self) -> Vec<&TrialRecord<R>> {
        self.records.iter().filter(|r| r.abnormal()).collect()
    }

    /// Completed results in trial-id order.
    pub fn results(&self) -> impl Iterator<Item = &R> {
        self.records.iter().filter_map(TrialRecord::result)
    }

    /// Deterministic repro lines for every abnormal record (for failure
    /// artifacts).
    pub fn failure_records(&self) -> Vec<String> {
        self.abnormal()
            .iter()
            .map(|r| r.describe())
            .collect::<Vec<_>>()
    }

    /// One-line wall-clock summary for stderr (never for artifacts):
    /// total, mean/p50/p95 per trial, and effective parallel speedup
    /// (sum of per-trial wall over campaign wall).
    pub fn wall_summary(&self, campaign: &str) -> String {
        let labels = [("campaign", campaign)];
        let h = self.wall_metrics.histogram(TRIAL_WALL_SECONDS, &labels);
        let (count, sum, p50, p95) = h
            .map(|h| {
                (
                    h.count(),
                    h.sum(),
                    h.quantile(0.5).unwrap_or(0.0),
                    h.quantile(0.95).unwrap_or(0.0),
                )
            })
            .unwrap_or((0, 0.0, 0.0, 0.0));
        let speedup = if self.wall_total_secs > 0.0 {
            sum / self.wall_total_secs
        } else {
            1.0
        };
        format!(
            "{campaign}: {count} trials on {} thread(s) in {:.2}s wall \
             (per-trial p50 {p50:.2}s p95 {p95:.2}s, busy {sum:.2}s, speedup x{speedup:.2})",
            self.threads, self.wall_total_secs
        )
    }
}

/// Shared context every trial function receives.
#[derive(Debug, Clone, Copy)]
pub struct TrialCtx {
    /// The per-trial sim-time budget, when one is set. Trial functions
    /// should cap their horizons with it so an overrunning simulation
    /// stops instead of running unbounded; the runner independently
    /// converts any overrun into a `TIMEOUT` record.
    pub sim_budget: Option<SimDuration>,
}

/// Runs a campaign of independent deterministic trials on a thread pool.
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    campaign: String,
    threads: usize,
    sim_budget: Option<SimDuration>,
}

impl CampaignRunner {
    /// A runner for `campaign` (metric label) on `threads` workers
    /// (clamped to ≥ 1).
    pub fn new(campaign: impl Into<String>, threads: usize) -> Self {
        CampaignRunner {
            campaign: campaign.into(),
            threads: threads.max(1),
            sim_budget: None,
        }
    }

    /// Sets the per-trial sim-time budget.
    #[must_use]
    pub fn with_sim_budget(mut self, budget: SimDuration) -> Self {
        self.sim_budget = Some(budget);
        self
    }

    /// The campaign label.
    pub fn campaign(&self) -> &str {
        &self.campaign
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every trial, each in its own `Sim` on a worker thread,
    /// and merges the records by trial id.
    ///
    /// `run_trial` is called once per trial on some worker; it must build
    /// all its state (including the `Sim`) from the spec alone. Panics
    /// inside it are captured into [`TrialOutcome::Panicked`] records.
    pub fn run<S, R, F>(&self, trials: Vec<Trial<S>>, run_trial: F) -> CampaignReport<R>
    where
        S: Send,
        R: Send,
        F: Fn(&S, TrialCtx) -> TrialRun<R> + Sync,
    {
        let campaign_wall = WallTimer::start();
        let ctx = TrialCtx {
            sim_budget: self.sim_budget,
        };
        let queue: Mutex<VecDeque<(usize, Trial<S>)>> =
            Mutex::new(trials.into_iter().enumerate().collect());
        let n_queued = queue.lock().map(|q| q.len()).unwrap_or(0);
        let records: Mutex<Vec<TrialRecord<R>>> = Mutex::new(Vec::with_capacity(n_queued));
        let workers = self.threads.min(n_queued.max(1));
        let budget = self.sim_budget;
        let run_trial = &run_trial;

        // The one sanctioned use of OS threads in the workspace: the
        // dlaas-lint `thread-spawn` rule exempts exactly this module, and
        // the clippy disallowed-methods gate is opted out alongside it.
        // Every spawned thread lives strictly inside this scope; no
        // parallelism survives past the merge below.
        #[allow(clippy::disallowed_methods)]
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let job = match queue.lock() {
                        Ok(mut q) => q.pop_front(),
                        Err(_) => None, // queue poisoned by a panicking lock holder
                    };
                    let Some((trial, t)) = job else { break };
                    let wall = WallTimer::start();
                    let ran = catch_unwind(AssertUnwindSafe(|| run_trial(&t.spec, ctx)));
                    let outcome = match ran {
                        Ok(run) => match budget {
                            Some(b) if run.sim_elapsed > b => TrialOutcome::Timeout {
                                sim_elapsed: run.sim_elapsed,
                                budget: b,
                            },
                            _ => TrialOutcome::Done(run.result),
                        },
                        Err(payload) => TrialOutcome::Panicked {
                            message: panic_message(payload.as_ref()),
                        },
                    };
                    let record = TrialRecord {
                        trial,
                        label: t.label,
                        repro: t.repro,
                        outcome,
                        wall_secs: wall.elapsed_secs(),
                    };
                    if let Ok(mut out) = records.lock() {
                        out.push(record);
                    }
                });
            }
        });

        // Deterministic sorted merge keyed on trial id: completion order
        // (host-scheduler dependent) is discarded here, so everything
        // derived from `records` is thread-count independent.
        let mut records = records.into_inner().unwrap_or_default();
        records.sort_by_key(|r| r.trial);

        let wall_metrics = Registry::new();
        wall_metrics.set_buckets(
            TRIAL_WALL_SECONDS,
            &[
                0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
                600.0, 1800.0,
            ],
        );
        for r in &records {
            wall_metrics.observe(
                TRIAL_WALL_SECONDS,
                &[("campaign", self.campaign.as_str())],
                r.wall_secs,
            );
        }

        CampaignReport {
            records,
            threads: self.threads,
            wall_total_secs: campaign_wall.elapsed_secs(),
            wall_metrics,
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl<R> fmt::Display for TrialOutcome<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrialOutcome::Done(_) => f.write_str("done"),
            TrialOutcome::Timeout { .. } => f.write_str("timeout"),
            TrialOutcome::Panicked { .. } => f.write_str("panic"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trials(n: usize) -> Vec<Trial<u64>> {
        (0..n)
            .map(|i| Trial {
                label: format!("t{i}"),
                repro: format!("cargo run -p dlaas-bench --bin demo -- --trial {i}"),
                spec: i as u64,
            })
            .collect()
    }

    fn ok_run(v: u64) -> TrialRun<u64> {
        TrialRun {
            result: v * 10,
            sim_elapsed: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn records_merge_in_trial_id_order_at_any_thread_count() {
        let run = |threads: usize| {
            let report = CampaignRunner::new("demo", threads).run(trials(16), |&v, _ctx| {
                // Skew completion order: later trials finish first.
                std::thread::sleep(std::time::Duration::from_millis(2 * (16 - v)));
                ok_run(v)
            });
            (
                report
                    .records
                    .iter()
                    .map(|r| (r.trial, r.label.clone()))
                    .collect::<Vec<_>>(),
                report.results().copied().collect::<Vec<u64>>(),
            )
        };
        let seq = run(1);
        let par = run(8);
        assert_eq!(seq, par, "merge must be thread-count independent");
        assert_eq!(par.1, (0..16).map(|v| v * 10).collect::<Vec<u64>>());
    }

    #[test]
    fn sim_budget_overrun_becomes_timeout_record() {
        let report = CampaignRunner::new("demo", 2)
            .with_sim_budget(SimDuration::from_secs(10))
            .run(trials(3), |&v, ctx| {
                assert_eq!(ctx.sim_budget, Some(SimDuration::from_secs(10)));
                TrialRun {
                    result: v,
                    sim_elapsed: if v == 1 {
                        SimDuration::from_secs(3600) // overruns the budget
                    } else {
                        SimDuration::from_secs(2)
                    },
                }
            });
        assert_eq!(report.records.len(), 3);
        let abnormal = report.abnormal();
        assert_eq!(abnormal.len(), 1);
        assert_eq!(abnormal[0].trial, 1);
        assert!(matches!(
            abnormal[0].outcome,
            TrialOutcome::Timeout { budget, .. } if budget == SimDuration::from_secs(10)
        ));
        assert!(abnormal[0].describe().contains("TIMEOUT"));
        assert!(abnormal[0].describe().contains("--trial 1"));
        // The two healthy trials still aggregate.
        assert_eq!(report.results().copied().collect::<Vec<u64>>(), vec![0, 2]);
    }

    #[test]
    fn exact_budget_is_not_a_timeout() {
        let report = CampaignRunner::new("demo", 1)
            .with_sim_budget(SimDuration::from_secs(10))
            .run(trials(1), |&v, _| TrialRun {
                result: v,
                sim_elapsed: SimDuration::from_secs(10),
            });
        assert!(report.abnormal().is_empty());
    }

    #[test]
    fn panic_becomes_failure_record_with_repro_and_others_survive() {
        let report = CampaignRunner::new("demo", 4).run(trials(6), |&v, _| {
            assert!(v != 3, "injected crash on trial 3");
            ok_run(v)
        });
        assert_eq!(report.records.len(), 6, "panicked trial is still recorded");
        let abnormal = report.abnormal();
        assert_eq!(abnormal.len(), 1);
        assert_eq!(abnormal[0].trial, 3);
        match &abnormal[0].outcome {
            TrialOutcome::Panicked { message } => {
                assert!(message.contains("injected crash"), "{message}");
            }
            other => panic!("expected panic record, got {other}"),
        }
        let failures = report.failure_records();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("--trial 3"), "{}", failures[0]);
        assert_eq!(
            report.results().copied().collect::<Vec<u64>>(),
            vec![0, 10, 20, 40, 50]
        );
    }

    #[test]
    fn wall_histogram_counts_every_trial() {
        let report = CampaignRunner::new("demo", 2).run(trials(5), |&v, _| ok_run(v));
        let h = report
            .wall_metrics
            .histogram(TRIAL_WALL_SECONDS, &[("campaign", "demo")])
            .expect("wall histogram recorded");
        assert_eq!(h.count(), 5);
        assert!(report.wall_total_secs >= 0.0);
        let summary = report.wall_summary("demo");
        assert!(summary.contains("5 trials"), "{summary}");
    }

    #[test]
    fn empty_campaign_reports_empty() {
        let report =
            CampaignRunner::new("demo", 4).run(Vec::<Trial<u64>>::new(), |&v, _| ok_run(v));
        assert!(report.records.is_empty());
        assert!(report.abnormal().is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let runner = CampaignRunner::new("demo", 0);
        assert_eq!(runner.threads(), 1);
        let report = runner.run(trials(2), |&v, _| ok_run(v));
        assert_eq!(report.records.len(), 2);
    }
}
