//! Multi-tenant workload generation: a Poisson stream of training jobs
//! with a configurable mix of frameworks, models and sizes — the traffic
//! a production DLaaS deployment actually sees, used by the soak
//! experiment and available to downstream users for capacity planning.

use std::cell::RefCell;
use std::rc::Rc;

use dlaas_core::{DlaasClient, DlaasPlatform, JobId, JobStatus, TrainingManifest};
use dlaas_gpu::{DlModel, Framework, GpuKind};
use dlaas_sim::{Sim, SimDuration, SimTime, TimerHandle};

/// Shape of the generated traffic.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Mean time between submissions (exponential interarrival).
    pub mean_interarrival: SimDuration,
    /// Training-iteration range (uniform).
    pub iterations: (u64, u64),
    /// Probability a job is distributed (2–4 learners).
    pub distributed_p: f64,
    /// Probability a distributed-capable job checkpoints.
    pub checkpoint_p: f64,
    /// GPU kind to request.
    pub gpu: GpuKind,
    /// Candidate (framework, model) pairs, drawn uniformly.
    pub mix: Vec<(Framework, DlModel)>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            mean_interarrival: SimDuration::from_secs(120),
            iterations: (200, 1_500),
            distributed_p: 0.25,
            checkpoint_p: 0.5,
            gpu: GpuKind::K80,
            mix: vec![
                (Framework::TensorFlow, DlModel::Resnet50),
                (Framework::TensorFlow, DlModel::InceptionV3),
                (Framework::Caffe, DlModel::Vgg16),
            ],
        }
    }
}

/// One submitted job and what became of it.
#[derive(Debug, Clone)]
pub struct SubmittedJob {
    /// The assigned id.
    pub job: JobId,
    /// Simulated submission time.
    pub submitted_at: SimTime,
    /// What was asked for.
    pub manifest: TrainingManifest,
}

/// Collected results of a workload run.
#[derive(Debug, Default)]
pub struct WorkloadReport {
    /// Jobs acknowledged by the platform.
    pub submitted: Vec<SubmittedJob>,
    /// Submissions the platform rejected (quota etc.).
    pub rejected: u64,
}

impl WorkloadReport {
    /// Completion statistics against the platform's records:
    /// `(completed, failed_or_killed, other)`.
    pub fn outcomes(&self, platform: &DlaasPlatform) -> (usize, usize, usize) {
        let mut done = 0;
        let mut failed = 0;
        let mut other = 0;
        for s in &self.submitted {
            match platform.job_status(&s.job) {
                Some(JobStatus::Completed) => done += 1,
                Some(st) if st.is_terminal() => failed += 1,
                _ => other += 1,
            }
        }
        (done, failed, other)
    }

    /// Mean turnaround (submission → terminal) in simulated seconds, over
    /// completed jobs.
    pub fn mean_turnaround_secs(&self, platform: &DlaasPlatform) -> Option<f64> {
        let mut total = 0.0;
        let mut n = 0u32;
        for s in &self.submitted {
            let Some(info) = platform.job_info(&s.job) else {
                continue;
            };
            if info.status != JobStatus::Completed {
                continue;
            }
            if let Some((_, t_us)) = info.history.last() {
                total += (*t_us as f64 / 1e6) - s.submitted_at.as_secs_f64();
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(total / n as f64)
        }
    }
}

/// A running generator; drop or [`WorkloadGenerator::stop`] to cease
/// submissions.
#[derive(Debug)]
pub struct WorkloadGenerator {
    report: Rc<RefCell<WorkloadReport>>,
    timer: TimerHandle,
}

impl WorkloadGenerator {
    /// Starts submitting jobs through `client` per `cfg`. Buckets named in
    /// the generated manifests (`wl-data` / `wl-results`) must exist.
    pub fn start(sim: &mut Sim, client: DlaasClient, cfg: WorkloadConfig) -> Self {
        let report = Rc::new(RefCell::new(WorkloadReport::default()));
        let mut rng = sim.rng().fork("workload-gen");
        let r = report.clone();
        let mut serial = 0u64;
        // Tick at a fine grain and fire probabilistically so interarrival
        // is (approximately) exponential while staying deterministic.
        let tick = SimDuration::from_secs(5);
        let p = tick.as_secs_f64() / cfg.mean_interarrival.as_secs_f64();
        let timer = dlaas_sim::every(sim, tick, move |sim, _n| {
            if !rng.chance(p.min(1.0)) {
                return true;
            }
            serial += 1;
            let (framework, model) = *rng
                .choose(&cfg.mix)
                .expect("workload mix must not be empty");
            let learners = if rng.chance(cfg.distributed_p) {
                rng.range_u64(2, 5) as u32
            } else {
                1
            };
            let iters = rng.range_u64(cfg.iterations.0, cfg.iterations.1 + 1);
            let ckpt = if rng.chance(cfg.checkpoint_p) {
                (iters / 5).max(50)
            } else {
                0
            };
            let manifest = TrainingManifest::builder(format!("wl-{serial}"))
                .framework(framework)
                .model(model)
                .gpus(cfg.gpu, 1)
                .learners(learners)
                .data("wl-data", "d/", 1_000_000_000)
                .results("wl-results")
                .iterations(iters)
                .checkpoint_every(ckpt)
                .build()
                .expect("generated manifest is valid");
            let report = r.clone();
            let m2 = manifest.clone();
            let submitted_at = sim.now();
            client.submit(sim, manifest, move |_sim, result| match result {
                Ok(job) => report.borrow_mut().submitted.push(SubmittedJob {
                    job,
                    submitted_at,
                    manifest: m2,
                }),
                Err(_) => report.borrow_mut().rejected += 1,
            });
            true
        });
        WorkloadGenerator { report, timer }
    }

    /// Stops generating.
    pub fn stop(&self) {
        self.timer.cancel();
    }

    /// The accumulating report.
    pub fn report(&self) -> Rc<RefCell<WorkloadReport>> {
        self.report.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use dlaas_core::Tenant;

    #[test]
    fn generator_submits_and_jobs_complete() {
        let mut sim = Sim::new(55);
        sim.trace_mut().set_enabled(false);
        let platform = crate::harness::experiment_platform(&mut sim, GpuKind::K80, 4);
        platform
            .add_tenant(&Tenant::new("wl", "wl-key", 0))
            .expect("bootstrap tenant insert");
        platform.seed_dataset("wl-data", "d/", 1_000_000_000);
        platform.create_bucket("wl-results");
        let client = platform.client("wl", "wl-key");

        let cfg = WorkloadConfig {
            mean_interarrival: SimDuration::from_secs(60),
            iterations: (100, 300),
            ..WorkloadConfig::default()
        };
        let gen = WorkloadGenerator::start(&mut sim, client, cfg);
        sim.run_for(SimDuration::from_mins(30));
        gen.stop();
        sim.run_for(SimDuration::from_hours(3));

        let report = gen.report();
        let report = report.borrow();
        assert!(
            report.submitted.len() >= 5,
            "expected a stream of jobs, got {}",
            report.submitted.len()
        );
        let (done, failed, other) = report.outcomes(&platform);
        assert_eq!(failed, 0);
        assert_eq!(other, 0, "all jobs must have finished");
        assert_eq!(done, report.submitted.len());
        assert!(report.mean_turnaround_secs(&platform).unwrap() > 0.0);
    }

    #[test]
    fn generator_is_deterministic() {
        fn run() -> usize {
            let mut sim = Sim::new(56);
            sim.trace_mut().set_enabled(false);
            let platform = crate::harness::experiment_platform(&mut sim, GpuKind::K80, 2);
            platform
                .add_tenant(&Tenant::new("wl", "wl-key", 0))
                .expect("bootstrap tenant insert");
            platform.seed_dataset("wl-data", "d/", 1_000_000_000);
            platform.create_bucket("wl-results");
            let gen = WorkloadGenerator::start(
                &mut sim,
                platform.client("wl", "wl-key"),
                WorkloadConfig::default(),
            );
            sim.run_for(SimDuration::from_mins(60));
            gen.stop();
            let n = gen.report().borrow().submitted.len();
            n
        }
        assert_eq!(run(), run());
    }
}
