//! Engine throughput bench: raw discrete-event kernel speed in events
//! per wall-second, the quantity every ROADMAP scale item is gated on.
//!
//! Two workloads:
//!
//! * `kernel_churn` — the kernel alone: a population of self-rescheduling
//!   actors whose delays span the near-future (bucket ring) and far-future
//!   (overflow tier) ranges, plus a defer and a schedule-then-cancel per
//!   firing so tombstone handling is on the measured path.
//! * `platform_soak` — the full control plane: the `scale_soak` N-job
//!   workload (boot, N submissions over a 20-minute window, 4h horizon),
//!   counting every kernel event the platform executes.
//!
//! Both report host wall time via the feature-gated
//! [`dlaas_obs::wallclock::WallTimer`], so `BENCH_engine.json` is a
//! *wall-derived* artifact: it is NOT byte-stable across runs and must
//! never enter a byte-comparison gate. CI instead compares the
//! events-per-wall-second rates against a committed baseline with a
//! relative tolerance ([`check_against_baseline`]).

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use dlaas_core::{DlaasPlatform, GpuNodeSpec, JobStatus, PlatformConfig, Tenant, TrainingManifest};
use dlaas_docstore::Value;
use dlaas_gpu::{DlModel, Framework, GpuKind};
use dlaas_obs::wallclock::WallTimer;
use dlaas_sim::{Sim, SimDuration, SimTime};

use crate::harness::BENCH_KEY;

/// Fixed sim horizon for the platform workload — matches `scale_soak` so
/// the measured event mix is the one the acceptance criterion names.
pub const PLATFORM_HORIZON: SimDuration = SimDuration::from_hours(4);

/// One measured workload: how many kernel events ran and how long the
/// host took to run them.
#[derive(Debug)]
pub struct EngineRun {
    /// Workload name, stable across runs — baseline matching keys on it.
    pub name: String,
    /// Kernel events executed during the measured region.
    pub events: u64,
    /// Simulated seconds covered by the measured region.
    pub sim_secs: f64,
    /// Host wall seconds for the measured region (reporting only).
    pub wall_secs: f64,
}

impl EngineRun {
    /// The headline rate: kernel events executed per host wall-second.
    pub fn events_per_wall_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Pure-kernel churn: `actors` self-rescheduling closures run until
/// `target_events` kernel events have executed. Every firing defers one
/// no-op (same-instant path), schedules-then-cancels one event (tombstone
/// path), and reschedules itself with a bimodal delay — 90% sub-millisecond
/// (lands in the calendar ring) and 10% multi-second (lands in the
/// overflow tier) — so all queue tiers are exercised in proportion.
pub fn kernel_churn(seed: u64, actors: u64, target_events: u64) -> EngineRun {
    fn fire(sim: &mut Sim) {
        sim.defer(|_| {});
        let id = sim.schedule_in(SimDuration::from_millis(5), |_| {});
        sim.cancel(id);
        let delay_us = if sim.rng().chance(0.9) {
            sim.rng().range_u64(1, 1_000)
        } else {
            sim.rng().range_u64(1_000_000, 30_000_000)
        };
        sim.schedule_in(SimDuration::from_micros(delay_us), fire);
    }

    let mut sim = Sim::new(seed);
    sim.trace_mut().set_enabled(false);
    for i in 0..actors {
        sim.schedule_in(SimDuration::from_micros(i), fire);
    }
    let wall = WallTimer::start();
    sim.run_until_pred(|s| s.events_executed() >= target_events);
    let wall_secs = wall.elapsed_secs();
    EngineRun {
        name: "kernel_churn".into(),
        events: sim.events_executed(),
        sim_secs: sim
            .now()
            .saturating_duration_since(SimTime::ZERO)
            .as_secs_f64(),
        wall_secs,
    }
}

fn soak_manifest(name: &str) -> TrainingManifest {
    TrainingManifest::builder(name)
        .framework(Framework::TensorFlow)
        .model(DlModel::Resnet50)
        .gpus(GpuKind::K80, 1)
        .learners(1)
        .data("scale-data", "d/", 200_000_000)
        .results("scale-results")
        .iterations(100)
        .build()
        .unwrap()
}

/// Full-platform soak shaped exactly like `scale_soak`: boot, N jobs
/// submitted over a 20-minute window, then the fixed 4h horizon. The
/// measured region spans the entire run (boot included) and the event
/// count is the kernel's own `events_executed`, so this is the
/// end-to-end events/wall-sec number the acceptance criterion names.
///
/// # Panics
///
/// Panics if submissions were lost or jobs are still unfinished at the
/// horizon — a throughput number over a malformed run is meaningless.
pub fn platform_soak(seed: u64, n: u64) -> EngineRun {
    let wall = WallTimer::start();
    let mut sim = Sim::new(seed);
    sim.trace_mut().set_enabled(false);
    let cfg = PlatformConfig {
        core_nodes: 4,
        gpu_nodes: vec![GpuNodeSpec {
            kind: GpuKind::K80,
            count: (n.div_ceil(4)).max(2) as u32,
            gpus_each: 4,
        }],
        ..PlatformConfig::default()
    };
    let platform = DlaasPlatform::new(&mut sim, cfg);
    platform.run_until_ready(&mut sim, SimDuration::from_secs(60));
    platform
        .add_tenant(&Tenant::new("bench", BENCH_KEY, 0))
        .expect("bootstrap tenant insert");
    platform.seed_dataset("scale-data", "d/", 200_000_000);
    platform.create_bucket("scale-results");
    let client = platform.client("scale", BENCH_KEY);

    let window = SimDuration::from_mins(20);
    let jobs = Rc::new(RefCell::new(Vec::with_capacity(n as usize)));
    for i in 0..n {
        let at = SimDuration::from_micros(window.as_micros() * i / n);
        let client = client.clone();
        let jobs = jobs.clone();
        sim.schedule_in(at, move |sim| {
            client.submit(sim, soak_manifest(&format!("scale-{i}")), move |_sim, r| {
                if let Ok(job) = r {
                    jobs.borrow_mut().push(job);
                }
            });
        });
    }
    sim.run_for(PLATFORM_HORIZON);
    let wall_secs = wall.elapsed_secs();

    let mut unfinished = 0u64;
    for job in jobs.borrow().iter() {
        match platform.job_info(job).map(|i| i.status) {
            Some(JobStatus::Completed | JobStatus::Failed | JobStatus::Killed) => {}
            _ => unfinished += 1,
        }
    }
    let submitted = jobs.borrow().len() as u64;
    assert!(
        submitted == n && unfinished == 0,
        "platform_soak malformed: submitted={submitted}/{n}, unfinished={unfinished}"
    );

    EngineRun {
        name: format!("platform_soak_n{n}"),
        events: sim.events_executed(),
        sim_secs: sim
            .now()
            .saturating_duration_since(SimTime::ZERO)
            .as_secs_f64(),
        wall_secs,
    }
}

/// Hand-rolled JSON with fixed key order. Unlike the other BENCH
/// artifacts this one embeds wall-clock readings, so it is byte-stable
/// only in structure — compare it with [`check_against_baseline`], never
/// with `cmp`.
pub fn render_json(seed: u64, runs: &[EngineRun]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    write!(
        out,
        "  \"bench\": \"engine\",\n  \"seed\": {seed},\n  \"workloads\": [\n"
    )
    .unwrap();
    for (i, r) in runs.iter().enumerate() {
        let mut line = String::new();
        write!(
            line,
            "    {{\"name\": \"{}\", \"events\": {}, \"sim_secs\": {:.6}, \"wall_secs\": {:.6}, \"events_per_wall_sec\": {:.1}}}",
            r.name,
            r.events,
            r.sim_secs,
            r.wall_secs,
            r.events_per_wall_sec()
        )
        .unwrap();
        out.push_str(&line);
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Compares a fresh `BENCH_engine.json` against a committed baseline.
///
/// For every workload in the baseline, the current run must contain the
/// same workload name with `events_per_wall_sec` no more than
/// `tolerance` (fractional, e.g. `0.10`) below the baseline rate.
/// Returns per-workload report lines on success, or the list of
/// violations on failure. Malformed JSON on either side is a violation —
/// the gate must not pass by failing to parse.
pub fn check_against_baseline(
    current_json: &str,
    baseline_json: &str,
    tolerance: f64,
) -> Result<Vec<String>, Vec<String>> {
    fn rates(json: &str, which: &str) -> Result<Vec<(String, f64)>, String> {
        let v = Value::parse_json(json).map_err(|e| format!("{which}: unparseable JSON: {e:?}"))?;
        let workloads = v
            .path("workloads")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("{which}: missing \"workloads\" array"))?;
        let mut out = Vec::new();
        for w in workloads {
            let name = w
                .path("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{which}: workload missing \"name\""))?;
            let rate = w
                .path("events_per_wall_sec")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{which}: {name} missing \"events_per_wall_sec\""))?;
            out.push((name.to_string(), rate));
        }
        Ok(out)
    }

    let base = match rates(baseline_json, "baseline") {
        Ok(b) => b,
        Err(e) => return Err(vec![e]),
    };
    let cur = match rates(current_json, "current") {
        Ok(c) => c,
        Err(e) => return Err(vec![e]),
    };
    if base.is_empty() {
        return Err(vec!["baseline: no workloads to compare".into()]);
    }

    let mut report = Vec::new();
    let mut violations = Vec::new();
    for (name, base_rate) in &base {
        let Some((_, cur_rate)) = cur.iter().find(|(n, _)| n == name) else {
            violations.push(format!(
                "{name}: present in baseline, missing from current run"
            ));
            continue;
        };
        let floor = base_rate * (1.0 - tolerance);
        let line = format!(
            "{name}: {cur_rate:.1} ev/wall-s vs baseline {base_rate:.1} (floor {floor:.1})"
        );
        if *cur_rate < floor {
            violations.push(format!("REGRESSION {line}"));
        } else {
            report.push(format!("ok {line}"));
        }
    }
    if violations.is_empty() {
        Ok(report)
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_churn_is_deterministic_in_events() {
        let a = kernel_churn(7, 50, 5_000);
        let b = kernel_churn(7, 50, 5_000);
        assert_eq!(a.events, b.events);
        assert_eq!(a.sim_secs, b.sim_secs);
        assert!(a.events >= 5_000);
    }

    fn fake_json(pairs: &[(&str, f64)]) -> String {
        let runs: Vec<EngineRun> = pairs
            .iter()
            .map(|(n, rate)| EngineRun {
                name: (*n).to_string(),
                events: (*rate * 10.0) as u64,
                sim_secs: 1.0,
                wall_secs: 10.0,
            })
            .collect();
        render_json(1, &runs)
    }

    #[test]
    fn baseline_check_passes_within_tolerance() {
        let base = fake_json(&[("kernel_churn", 1000.0)]);
        let cur = fake_json(&[("kernel_churn", 950.0)]);
        let report = check_against_baseline(&cur, &base, 0.10).expect("within tolerance");
        assert_eq!(report.len(), 1);
        assert!(report[0].starts_with("ok kernel_churn"));
    }

    #[test]
    fn baseline_check_fails_on_regression() {
        let base = fake_json(&[("kernel_churn", 1000.0)]);
        let cur = fake_json(&[("kernel_churn", 800.0)]);
        let violations = check_against_baseline(&cur, &base, 0.10).expect_err("regressed");
        assert!(violations[0].starts_with("REGRESSION kernel_churn"));
    }

    #[test]
    fn baseline_check_fails_on_missing_workload_or_bad_json() {
        let base = fake_json(&[("kernel_churn", 1000.0), ("platform_soak_n100", 50.0)]);
        let cur = fake_json(&[("kernel_churn", 1000.0)]);
        assert!(check_against_baseline(&cur, &base, 0.10).is_err());
        assert!(check_against_baseline("not json", &base, 0.10).is_err());
        assert!(check_against_baseline(&cur, "{}", 0.10).is_err());
    }
}
