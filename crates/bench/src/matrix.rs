//! The fault matrix: every fault kind crossed with every Guardian
//! deployment step, each trial judged by the platform invariant checker.
//!
//! The paper validates dependability with targeted `kubectl` experiments
//! (Fig. 4) and anecdotal chaos runs. This module systematises that into
//! a campaign: for each of the Guardian's six deployment steps (§III-d)
//! a trigger watches for the step's observable side effect and, the
//! moment it appears, injects one fault — a Guardian crash, an etcd
//! leader crash, a metadata-store crash, an NFS outage or a network
//! partition of the etcd leader. The job must still complete, and after
//! a GC settle the whole platform must satisfy every invariant of
//! [`dlaas_core::invariants`] (liveness, status monotonicity, bounded
//! retries, no leaked resources).
//!
//! [`run_cell`] runs one (fault, step, seed) trial; [`sweep`] runs the
//! full matrix and aggregates recovery times into a histogram;
//! [`soak`] runs a randomized long-duration campaign with the
//! [`InvariantMonitor`] checking continuously.
//!
//! Campaigns parallelise over seeds: [`sweep_parallel`] and
//! [`soak_parallel`] shard their trials across the
//! [`CampaignRunner`](crate::runner::CampaignRunner) and merge the
//! records by trial id, so every aggregate here — tables, the
//! [`render_matrix_json`] artifact, the replayed
//! [`MATRIX_RECOVERY_SECONDS`] histogram — is byte-identical for any
//! thread count.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use dlaas_core::{
    check_invariants, paths, DlaasPlatform, GpuNodeSpec, InvariantMonitor, JobId, JobStatus,
    PlatformConfig, Tenant,
};
use dlaas_faults::{nfs_outage_window, partition_window, when, ChaosMonkey};
use dlaas_gpu::{DlModel, Framework, GpuKind};
use dlaas_kube::{labels, PodPhase};
use dlaas_raft::raft_addr;
use dlaas_sim::{Sim, SimDuration, SimTime};

use crate::harness::{experiment_platform, throughput_manifest, BENCH_KEY};
use crate::runner::{CampaignReport, CampaignRunner, Trial, TrialRun};
use crate::workload::{WorkloadConfig, WorkloadGenerator};

/// Histogram of fault-to-terminal times, labelled by fault kind and
/// injection point.
pub const MATRIX_RECOVERY_SECONDS: &str = "bench_matrix_recovery_seconds";

/// How long substrate outages (NFS, MongoDB, etcd node, partition) last.
///
/// Sized against the deploy retry budget: a mid-deploy failure costs one
/// of `deploy_max_attempts` (3) Guardian incarnations, and with the
/// default kubelet timings (crash detect 600ms, first restart free,
/// second restart backed off by 10s, jitter ±25%) the third incarnation
/// boots no earlier than ~8.9s after the first failure. A 6s outage
/// therefore always leaves at least one attempt that runs against
/// healthy substrates.
fn outage() -> SimDuration {
    SimDuration::from_secs(6)
}

/// One injectable platform-level fault of the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `kubectl delete`-style crash of the job's Guardian pod.
    GuardianCrash,
    /// Crash of the current etcd leader node (restarted after the
    /// outage window — a rolling node failure, not a quorum loss).
    EtcdLeaderCrash,
    /// Crash of the metadata store; it recovers from its journal.
    MongoCrash,
    /// NFS data plane unavailable for the outage window.
    NfsOutage,
    /// The etcd leader partitioned away from its peers, then healed.
    Partition,
    /// Crash of the LCM replica that owns the job's shard — the sweep
    /// "leader" for this job. Its lease must expire and a survivor must
    /// take the shard over without ever double-driving the job.
    LcmOwnerCrash,
}

impl FaultKind {
    /// Every fault kind, in campaign order.
    pub fn all() -> [FaultKind; 6] {
        [
            FaultKind::GuardianCrash,
            FaultKind::EtcdLeaderCrash,
            FaultKind::MongoCrash,
            FaultKind::NfsOutage,
            FaultKind::Partition,
            FaultKind::LcmOwnerCrash,
        ]
    }

    /// Metric label value.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::GuardianCrash => "guardian_crash",
            FaultKind::EtcdLeaderCrash => "etcd_leader_crash",
            FaultKind::MongoCrash => "mongo_crash",
            FaultKind::NfsOutage => "nfs_outage",
            FaultKind::Partition => "partition",
            FaultKind::LcmOwnerCrash => "lcm_owner_crash",
        }
    }

    /// Parses a metric label back into the kind (`None` when unknown).
    pub fn from_label(label: &str) -> Option<FaultKind> {
        FaultKind::all().into_iter().find(|k| k.label() == label)
    }

    /// Applies the fault to a live platform.
    pub fn inject(&self, sim: &mut Sim, platform: &DlaasPlatform, job: &JobId) {
        match self {
            FaultKind::GuardianCrash => {
                platform.kube().crash_pod(sim, &paths::guardian_job(job));
            }
            FaultKind::EtcdLeaderCrash => {
                if let Some(leader) = platform.etcd().leader_id() {
                    let cluster = platform.etcd().clone();
                    cluster.crash(sim, leader);
                    sim.schedule_in(outage(), move |sim| cluster.restart(sim, leader));
                }
            }
            FaultKind::MongoCrash => {
                platform.crash_mongo(sim, Some(outage()));
            }
            FaultKind::NfsOutage => {
                nfs_outage_window(sim, platform.nfs(), outage());
            }
            FaultKind::Partition => {
                // Both sides of the split must be listed: a group
                // partition leaves unlisted addresses unaffected.
                if let Some(leader) = platform.etcd().leader_id() {
                    partition_window(
                        sim,
                        platform.etcd().raft().net(),
                        vec![vec![raft_addr(leader)], peer_group(platform, leader)],
                        outage(),
                    );
                }
            }
            FaultKind::LcmOwnerCrash => {
                // Read the shard's owner key off the etcd leader to find
                // which replica sweeps this job, then kill exactly that
                // pod. Falls back to replica 0 when the key is not there
                // yet (shard unclaimed at injection time).
                let shards = platform.handles().config.lcm_shards;
                let key = paths::lcm_shard_owner(paths::job_shard(job, shards));
                let owner = platform
                    .etcd()
                    .leader_id()
                    .and_then(|l| {
                        platform
                            .etcd()
                            .kv_snapshot(l)
                            .get(&key)
                            .map(|v| v.value.clone())
                    })
                    .unwrap_or_else(|| "dlaas-lcm-0".to_owned());
                platform.kube().crash_pod(sim, &owner);
            }
        }
    }
}

/// The raft addresses of every etcd node except `leader` — the other
/// side of a leader-isolation partition.
fn peer_group(platform: &DlaasPlatform, leader: u32) -> Vec<dlaas_net::Addr> {
    (0..platform.etcd().len() as u32)
        .filter(|&i| i != leader)
        .map(raft_addr)
        .collect()
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::GuardianCrash => "guardian crash",
            FaultKind::EtcdLeaderCrash => "etcd leader crash",
            FaultKind::MongoCrash => "mongo crash",
            FaultKind::NfsOutage => "NFS outage",
            FaultKind::Partition => "partition",
            FaultKind::LcmOwnerCrash => "LCM owner crash",
        };
        f.write_str(s)
    }
}

/// The Guardian's six deployment steps (§III-d), each identified by its
/// first observable side effect — the trigger condition for injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionPoint {
    /// Step 1 (rollback + start): the Guardian pod is Running.
    GuardianUp,
    /// Step 2: the job's persisted status flipped to DEPLOYING.
    MarkDeploying,
    /// Step 3: the job's NFS volume exists.
    ProvisionVolume,
    /// Step 4: the helper pod exists.
    CreateHelper,
    /// Step 5: learner pods exist.
    CreateLearners,
    /// Step 6: the job's network policy is applied.
    ApplyPolicies,
}

impl InjectionPoint {
    /// Every injection point, in deployment-step order.
    pub fn all() -> [InjectionPoint; 6] {
        [
            InjectionPoint::GuardianUp,
            InjectionPoint::MarkDeploying,
            InjectionPoint::ProvisionVolume,
            InjectionPoint::CreateHelper,
            InjectionPoint::CreateLearners,
            InjectionPoint::ApplyPolicies,
        ]
    }

    /// Metric label value.
    pub fn label(&self) -> &'static str {
        match self {
            InjectionPoint::GuardianUp => "guardian_up",
            InjectionPoint::MarkDeploying => "mark_deploying",
            InjectionPoint::ProvisionVolume => "provision_volume",
            InjectionPoint::CreateHelper => "create_helper",
            InjectionPoint::CreateLearners => "create_learners",
            InjectionPoint::ApplyPolicies => "apply_policies",
        }
    }

    /// Parses a metric label back into the point (`None` when unknown).
    pub fn from_label(label: &str) -> Option<InjectionPoint> {
        InjectionPoint::all()
            .into_iter()
            .find(|p| p.label() == label)
    }

    /// The trigger predicate: `true` once the step's side effect is
    /// observable on the platform.
    pub fn predicate(&self, platform: &DlaasPlatform, job: &JobId) -> Box<dyn FnMut(&Sim) -> bool> {
        let kube = platform.kube().clone();
        let job = job.clone();
        match self {
            InjectionPoint::GuardianUp => {
                let pod = paths::guardian_job(&job);
                Box::new(move |_| kube.pod_phase(&pod) == Some(PodPhase::Running))
            }
            InjectionPoint::MarkDeploying => {
                let platform = platform.clone();
                Box::new(move |_| platform.job_status(&job) == Some(JobStatus::Deploying))
            }
            InjectionPoint::ProvisionVolume => {
                let nfs = platform.nfs().clone();
                let vol = paths::volume(&job);
                Box::new(move |_| nfs.find_volume(&vol).is_some())
            }
            InjectionPoint::CreateHelper => {
                let sel = labels! {"job" => job.as_str(), "role" => "helper"};
                Box::new(move |_| !kube.pods_matching(&sel).is_empty())
            }
            InjectionPoint::CreateLearners => {
                let sel = labels! {"job" => job.as_str(), "role" => "learner"};
                Box::new(move |_| !kube.pods_matching(&sel).is_empty())
            }
            InjectionPoint::ApplyPolicies => {
                let netpol = paths::network_policy(&job);
                Box::new(move |_| kube.network_policy_names().contains(&netpol))
            }
        }
    }
}

impl fmt::Display for InjectionPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InjectionPoint::GuardianUp => "guardian up",
            InjectionPoint::MarkDeploying => "mark DEPLOYING",
            InjectionPoint::ProvisionVolume => "provision volume",
            InjectionPoint::CreateHelper => "create helper",
            InjectionPoint::CreateLearners => "create learners",
            InjectionPoint::ApplyPolicies => "apply policies",
        };
        f.write_str(s)
    }
}

/// Outcome of one (fault, step, seed) trial.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The injected fault.
    pub kind: FaultKind,
    /// The deployment step it targeted.
    pub point: InjectionPoint,
    /// The simulation seed.
    pub seed: u64,
    /// The job's final status.
    pub status: Option<JobStatus>,
    /// Whether the trigger fired (the step was actually reached).
    pub fault_fired: bool,
    /// Injection-to-terminal time, when the job reached a terminal state.
    pub recovery: Option<SimDuration>,
    /// Invariant violations found after the settle, rendered.
    pub violations: Vec<String>,
}

impl CellOutcome {
    /// A cell passes when the fault really fired, the job still
    /// completed, and no platform invariant was violated afterwards.
    pub fn passed(&self) -> bool {
        self.fault_fired && self.status == Some(JobStatus::Completed) && self.violations.is_empty()
    }

    /// One summary line for tables and failure messages.
    pub fn describe(&self) -> String {
        format!(
            "{} at {} (seed {}): status={:?} fired={} violations={}",
            self.kind,
            self.point,
            self.seed,
            self.status,
            self.fault_fired,
            self.violations.len()
        )
    }
}

/// Runs one cell of the matrix: boot a platform, submit one training
/// job, inject `kind` the moment `point` becomes observable, run the job
/// to a terminal state, let GC settle past the invariant grace period,
/// then check every platform invariant.
pub fn run_cell(seed: u64, kind: FaultKind, point: InjectionPoint) -> CellOutcome {
    run_cell_inner(seed, kind, point).0
}

fn run_cell_inner(seed: u64, kind: FaultKind, point: InjectionPoint) -> (CellOutcome, SimTime) {
    let mut sim = Sim::new(seed);
    sim.trace_mut().set_enabled(false);
    let platform = experiment_platform(&mut sim, GpuKind::K80, 1);
    let manifest = throughput_manifest(
        DlModel::Resnet50,
        Framework::TensorFlow,
        GpuKind::K80,
        1,
        300,
    );
    let client = platform.client("bench", BENCH_KEY);
    let got: Rc<RefCell<Option<JobId>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    client.submit(&mut sim, manifest, move |_s, r| {
        *g.borrow_mut() = Some(r.expect("submission accepted"));
    });
    sim.run_until_pred(|_| got.borrow().is_some());
    let job = got.borrow().clone().expect("submitted");

    let fired: Rc<Cell<Option<SimTime>>> = Rc::new(Cell::new(None));
    let f2 = fired.clone();
    let pred = point.predicate(&platform, &job);
    let p2 = platform.clone();
    let job2 = job.clone();
    when(
        &mut sim,
        SimDuration::from_millis(200),
        format!("{kind} at {point}"),
        pred,
        move |sim| {
            f2.set(Some(sim.now()));
            kind.inject(sim, &p2, &job2);
        },
    );

    let status = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(1),
    );
    let recovery = match (fired.get(), status) {
        (Some(at), Some(s)) if s.is_terminal() => Some(sim.now().saturating_duration_since(at)),
        _ => None,
    };
    if let Some(d) = recovery {
        sim.metrics().observe_duration_us(
            MATRIX_RECOVERY_SECONDS,
            &[("fault", kind.label()), ("point", point.label())],
            d.as_micros(),
        );
    }

    // Settle well past the GC grace (3 LCM scan periods) so the leak
    // invariants apply with full force.
    sim.run_for(platform.handles().config.lcm_scan * 6);
    let report = check_invariants(&sim, &platform);

    let outcome = CellOutcome {
        kind,
        point,
        seed,
        status,
        fault_fired: fired.get().is_some(),
        recovery,
        violations: report
            .violations
            .iter()
            .map(std::string::ToString::to_string)
            .collect(),
    };
    (outcome, sim.now())
}

/// A full matrix campaign: outcomes plus an aggregate registry holding
/// the [`MATRIX_RECOVERY_SECONDS`] histogram across every cell.
#[derive(Debug)]
pub struct MatrixRun {
    /// One outcome per (fault, step, seed).
    pub outcomes: Vec<CellOutcome>,
    /// Aggregated recovery histogram, labelled by fault and point.
    pub metrics: dlaas_sim::Registry,
}

impl MatrixRun {
    /// Every cell that did not pass.
    pub fn failures(&self) -> Vec<&CellOutcome> {
        self.outcomes.iter().filter(|o| !o.passed()).collect()
    }
}

/// Runs the full matrix: every fault kind × every deployment step ×
/// `seeds` seeds starting at `base_seed`. Sequential (one thread, no
/// budget) — the parallel entry point is [`sweep_parallel`].
pub fn sweep(base_seed: u64, seeds: u64) -> MatrixRun {
    sweep_parallel(base_seed, seeds, 1, None).run
}

/// The spec of one matrix trial — plain `Send + Clone` data a worker
/// thread rebuilds the whole trial from.
#[derive(Debug, Clone, Copy)]
pub struct MatrixSpec {
    /// The simulation seed.
    pub seed: u64,
    /// The fault to inject.
    pub kind: FaultKind,
    /// The deployment step to target.
    pub point: InjectionPoint,
}

/// The exact command that reruns one matrix cell alone, single-threaded.
pub fn matrix_repro(kind: FaultKind, point: InjectionPoint, seed: u64) -> String {
    format!(
        "cargo run --release -p dlaas-bench --bin fault_matrix -- --trial {}/{} --seed {seed}",
        kind.label(),
        point.label()
    )
}

/// The canonical trial enumeration of a matrix campaign: fault kind ×
/// injection point × seed, in that nesting order. Trial ids (positions
/// in this list) key the deterministic sorted merge.
pub fn matrix_trials(base_seed: u64, seeds: u64) -> Vec<Trial<MatrixSpec>> {
    matrix_trials_for(&FaultKind::all(), base_seed, seeds)
}

/// Like [`matrix_trials`], restricted to the given fault kinds (the
/// `--fault LABEL` smoke subset CI runs on every push).
pub fn matrix_trials_for(
    kinds: &[FaultKind],
    base_seed: u64,
    seeds: u64,
) -> Vec<Trial<MatrixSpec>> {
    let mut trials = Vec::new();
    for &kind in kinds {
        for point in InjectionPoint::all() {
            for i in 0..seeds {
                let seed = base_seed + i;
                trials.push(Trial {
                    label: format!("{}/{}/{seed}", kind.label(), point.label()),
                    repro: matrix_repro(kind, point, seed),
                    spec: MatrixSpec { seed, kind, point },
                });
            }
        }
    }
    trials
}

/// Like [`run_cell`], also reporting the total simulated time the trial
/// consumed (what the runner's sim-time budget is checked against).
pub fn run_cell_timed(seed: u64, kind: FaultKind, point: InjectionPoint) -> TrialRun<CellOutcome> {
    let (outcome, end) = run_cell_inner(seed, kind, point);
    TrialRun {
        result: outcome,
        sim_elapsed: end.saturating_duration_since(SimTime::ZERO),
    }
}

/// A matrix campaign executed through the runner: the aggregate
/// [`MatrixRun`] (completed cells only) plus the full per-trial report
/// with any `TIMEOUT`/panic records.
#[derive(Debug)]
pub struct MatrixCampaign {
    /// Aggregated outcomes and recovery histogram over completed trials.
    pub run: MatrixRun,
    /// The per-trial report, sorted by trial id.
    pub report: CampaignReport<CellOutcome>,
}

impl MatrixCampaign {
    /// `true` when every trial completed, passed, and stayed in budget.
    pub fn clean(&self) -> bool {
        self.report.abnormal().is_empty() && self.run.failures().is_empty()
    }
}

/// Runs the full matrix campaign on `threads` workers. Records merge by
/// trial id, and the recovery histogram is replayed from the merged
/// sequence on the calling thread, so every output — including the
/// registry exposition — is byte-identical for any `threads`, including 1.
pub fn sweep_parallel(
    base_seed: u64,
    seeds: u64,
    threads: usize,
    sim_budget: Option<SimDuration>,
) -> MatrixCampaign {
    sweep_parallel_for(&FaultKind::all(), base_seed, seeds, threads, sim_budget)
}

/// Like [`sweep_parallel`], restricted to the given fault kinds.
pub fn sweep_parallel_for(
    kinds: &[FaultKind],
    base_seed: u64,
    seeds: u64,
    threads: usize,
    sim_budget: Option<SimDuration>,
) -> MatrixCampaign {
    let mut runner = CampaignRunner::new("fault_matrix", threads);
    if let Some(b) = sim_budget {
        runner = runner.with_sim_budget(b);
    }
    let report = runner.run(matrix_trials_for(kinds, base_seed, seeds), |spec, _ctx| {
        run_cell_timed(spec.seed, spec.kind, spec.point)
    });

    // Replay the merged records into a fresh registry. Histogram bucket
    // counts are commutative, but replaying in trial-id order makes the
    // determinism argument trivial: same sorted inputs, same exposition.
    let metrics = dlaas_sim::Registry::new();
    let mut outcomes = Vec::new();
    for out in report.results() {
        if let Some(d) = out.recovery {
            metrics.observe_duration_us(
                MATRIX_RECOVERY_SECONDS,
                &[("fault", out.kind.label()), ("point", out.point.label())],
                d.as_micros(),
            );
        }
        outcomes.push(out.clone());
    }
    MatrixCampaign {
        run: MatrixRun { outcomes, metrics },
        report,
    }
}

/// Renders a matrix campaign as a byte-stable JSON artifact: one object
/// per cell in trial-id order, abnormal (timeout/panic) records with
/// their repro commands, and the full metrics exposition. Contains no
/// thread count and no wall-clock reading, so the artifact is identical
/// for any `--threads` value.
pub fn render_matrix_json(base_seed: u64, seeds: u64, campaign: &MatrixCampaign) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"campaign\": \"fault_matrix\",\n");
    out.push_str(&format!("  \"base_seed\": {base_seed},\n"));
    out.push_str(&format!("  \"seeds\": {seeds},\n"));
    out.push_str("  \"cells\": [\n");
    let cells: Vec<String> = campaign
        .run
        .outcomes
        .iter()
        .map(|o| {
            let status = o.status.map_or("null".to_owned(), |s| format!("\"{s:?}\""));
            let recovery = o
                .recovery
                .map_or("null".to_owned(), |d| d.as_micros().to_string());
            format!(
                "    {{\"fault\": \"{}\", \"point\": \"{}\", \"seed\": {}, \"status\": {status}, \
                 \"fired\": {}, \"recovery_us\": {recovery}, \"violations\": {}, \"passed\": {}}}",
                o.kind.label(),
                o.point.label(),
                o.seed,
                o.fault_fired,
                o.violations.len(),
                o.passed()
            )
        })
        .collect();
    out.push_str(&cells.join(",\n"));
    out.push_str("\n  ],\n");
    let failures: Vec<String> = campaign
        .run
        .failures()
        .iter()
        .map(|o| format!("    \"{}\"", json_escape(&o.describe())))
        .collect();
    out.push_str("  \"failures\": [\n");
    out.push_str(&failures.join(",\n"));
    out.push_str("\n  ],\n");
    let abnormal: Vec<String> = campaign
        .report
        .failure_records()
        .iter()
        .map(|d| format!("    \"{}\"", json_escape(d)))
        .collect();
    out.push_str("  \"abnormal\": [\n");
    out.push_str(&abnormal.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"metrics\": \"{}\"\n",
        json_escape(&campaign.run.metrics.expose())
    ));
    out.push_str("}\n");
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Results of one randomized soak (see [`soak`]).
#[derive(Debug)]
pub struct SoakOutcome {
    /// Jobs acknowledged by the platform.
    pub submitted: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Jobs that ended FAILED or KILLED.
    pub failed: usize,
    /// Jobs still non-terminal after the drain (must be zero).
    pub unfinished: usize,
    /// Distinct (job, invariant) violations the continuous monitor saw.
    pub violations_during: usize,
    /// Violations of the final post-drain check, rendered.
    pub final_violations: Vec<String>,
    /// The platform's metrics registry at the end of the run.
    pub metrics: dlaas_sim::Registry,
}

impl SoakOutcome {
    /// `true` when the soak ended with every invariant intact and no job
    /// in limbo.
    pub fn clean(&self) -> bool {
        self.unfinished == 0 && self.violations_during == 0 && self.final_violations.is_empty()
    }
}

/// A randomized soak with continuous invariant checking: a Poisson
/// workload, a pod-level chaos monkey, and a rotating substrate fault
/// (etcd leader crash, mongo crash, NFS outage, partition) every few
/// minutes, with the [`InvariantMonitor`] re-checking every minute.
/// After `hours` the faults stop, the platform drains, and a final
/// strict check runs.
pub fn soak(seed: u64, hours: u64) -> SoakOutcome {
    soak_inner(seed, hours, None).0
}

/// Like [`soak`], with an explicit LCM replica count (the nightly HA
/// soak runs M=3 so shard takeover happens under chaos, not just in
/// targeted cells).
pub fn soak_with(seed: u64, hours: u64, lcm_replicas: Option<u32>) -> SoakOutcome {
    soak_inner(seed, hours, lcm_replicas).0
}

fn soak_inner(seed: u64, hours: u64, lcm_replicas: Option<u32>) -> (SoakOutcome, SimTime) {
    let mut sim = Sim::new(seed);
    sim.trace_mut().set_enabled(false);
    let mut cfg = PlatformConfig {
        core_nodes: 4,
        gpu_nodes: vec![GpuNodeSpec {
            kind: GpuKind::K80,
            count: 8,
            gpus_each: 4,
        }],
        ..PlatformConfig::default()
    };
    if let Some(m) = lcm_replicas {
        cfg.core.lcm_replicas = m;
    }
    let platform = DlaasPlatform::new(&mut sim, cfg);
    platform.run_until_ready(&mut sim, SimDuration::from_secs(60));
    platform
        .add_tenant(&Tenant::new("bench", BENCH_KEY, 0))
        .expect("bootstrap tenant insert");
    platform.seed_dataset("wl-data", "d/", 1_000_000_000);
    platform.create_bucket("wl-results");

    let gen = WorkloadGenerator::start(
        &mut sim,
        platform.client("operator", BENCH_KEY),
        WorkloadConfig::default(),
    );
    let monkey = ChaosMonkey::unleash(
        &mut sim,
        platform.kube(),
        labels! {},
        SimDuration::from_secs(90),
        0.3,
    );
    // Liveness bound sized for chaos: a late crash of a non-checkpointing
    // job legitimately restarts training from scratch (§III-g), so time
    // to terminal is queueing plus several full trainings.
    let bounds = dlaas_core::InvariantBounds {
        terminal_within: SimDuration::from_hours(4),
        ..dlaas_core::InvariantBounds::from_config(&platform.handles().config)
    };
    let monitor =
        InvariantMonitor::install_with(&mut sim, &platform, SimDuration::from_secs(60), bounds);

    // Rotate through the substrate faults, one every few minutes.
    let p2 = platform.clone();
    let rotation = dlaas_sim::every(&mut sim, SimDuration::from_mins(7), move |sim, n| {
        match n % 4 {
            0 => {
                if let Some(leader) = p2.etcd().leader_id() {
                    let cluster = p2.etcd().clone();
                    cluster.crash(sim, leader);
                    sim.schedule_in(outage(), move |sim| cluster.restart(sim, leader));
                }
            }
            1 => p2.crash_mongo(sim, Some(outage())),
            2 => nfs_outage_window(sim, p2.nfs(), outage()),
            _ => {
                if let Some(leader) = p2.etcd().leader_id() {
                    partition_window(
                        sim,
                        p2.etcd().raft().net(),
                        vec![vec![raft_addr(leader)], peer_group(&p2, leader)],
                        outage(),
                    );
                }
            }
        }
        true
    });

    sim.run_for(SimDuration::from_hours(hours));
    gen.stop();
    monkey.stop();
    rotation.cancel();
    // Drain: every in-flight job finishes and GC passes the grace period.
    sim.run_for(SimDuration::from_hours(4));

    let (submitted, completed, failed, unfinished) = {
        let report = gen.report();
        let report = report.borrow();
        let (done, failed, other) = report.outcomes(&platform);
        (report.submitted.len(), done, failed, other)
    };
    let final_report = check_invariants(&sim, &platform);
    let violations_during = monitor.violations_seen();
    monitor.cancel();

    let outcome = SoakOutcome {
        submitted,
        completed,
        failed,
        unfinished,
        violations_during,
        final_violations: final_report
            .violations
            .iter()
            .map(std::string::ToString::to_string)
            .collect(),
        metrics: sim.metrics().clone(),
    };
    (outcome, sim.now())
}

/// The `Send` digest of one soak trial: everything the campaign tables
/// and artifacts need, extracted on the worker thread because the full
/// [`SoakOutcome`] carries a (non-`Send`) registry handle.
#[derive(Debug, Clone)]
pub struct SoakSummary {
    /// The soak's seed.
    pub seed: u64,
    /// Chaos hours before the drain.
    pub hours: u64,
    /// Jobs acknowledged by the platform.
    pub submitted: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Jobs that ended FAILED or KILLED.
    pub failed: usize,
    /// Jobs still non-terminal after the drain (must be zero).
    pub unfinished: usize,
    /// Distinct (job, invariant) violations the continuous monitor saw.
    pub violations_during: usize,
    /// Violations of the final post-drain check, rendered.
    pub final_violations: Vec<String>,
    /// Pod restarts observed platform-wide during the soak.
    pub pod_restarts: u64,
}

impl SoakSummary {
    /// Mirrors [`SoakOutcome::clean`].
    pub fn clean(&self) -> bool {
        self.unfinished == 0 && self.violations_during == 0 && self.final_violations.is_empty()
    }

    /// One summary line for tables and failure messages.
    pub fn describe(&self) -> String {
        format!(
            "soak seed {} ({}h): submitted={} completed={} failed={} unfinished={} \
             violations_during={} final_violations={} pod_restarts={}",
            self.seed,
            self.hours,
            self.submitted,
            self.completed,
            self.failed,
            self.unfinished,
            self.violations_during,
            self.final_violations.len(),
            self.pod_restarts
        )
    }
}

/// The exact command that reruns one soak trial alone, single-threaded.
pub fn soak_repro(seed: u64, hours: u64, lcm_replicas: Option<u32>) -> String {
    let replicas = lcm_replicas.map_or(String::new(), |m| format!(" --lcm-replicas {m}"));
    format!(
        "cargo run --release -p dlaas-bench --bin fault_matrix -- \
         --soak {hours} --seed {seed}{replicas}"
    )
}

/// Runs one soak and digests it into a `Send` summary plus the simulated
/// time consumed.
pub fn soak_summary_timed(
    seed: u64,
    hours: u64,
    lcm_replicas: Option<u32>,
) -> TrialRun<SoakSummary> {
    let (out, end) = soak_inner(seed, hours, lcm_replicas);
    let pod_restarts = out.metrics.counter_total("kube_pod_restarts_total");
    TrialRun {
        result: SoakSummary {
            seed,
            hours,
            submitted: out.submitted,
            completed: out.completed,
            failed: out.failed,
            unfinished: out.unfinished,
            violations_during: out.violations_during,
            final_violations: out.final_violations,
            pod_restarts,
        },
        sim_elapsed: end.saturating_duration_since(SimTime::ZERO),
    }
}

/// Runs a campaign of independent soaks (seeds `base_seed..base_seed +
/// seeds`, each `hours` of chaos) on `threads` workers, merged by trial
/// id.
pub fn soak_parallel(
    base_seed: u64,
    seeds: u64,
    hours: u64,
    threads: usize,
    sim_budget: Option<SimDuration>,
) -> CampaignReport<SoakSummary> {
    soak_parallel_with(base_seed, seeds, hours, None, threads, sim_budget)
}

/// Like [`soak_parallel`], with an explicit LCM replica count per soak.
pub fn soak_parallel_with(
    base_seed: u64,
    seeds: u64,
    hours: u64,
    lcm_replicas: Option<u32>,
    threads: usize,
    sim_budget: Option<SimDuration>,
) -> CampaignReport<SoakSummary> {
    let trials: Vec<Trial<(u64, u64)>> = (0..seeds)
        .map(|i| {
            let seed = base_seed + i;
            Trial {
                label: format!("soak/{seed}"),
                repro: soak_repro(seed, hours, lcm_replicas),
                spec: (seed, hours),
            }
        })
        .collect();
    let mut runner = CampaignRunner::new("chaos_soak", threads);
    if let Some(b) = sim_budget {
        runner = runner.with_sim_budget(b);
    }
    runner.run(trials, move |&(seed, hours), _ctx| {
        soak_summary_timed(seed, hours, lcm_replicas)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guardian_crash_mid_deploy_still_completes() {
        let out = run_cell(11, FaultKind::GuardianCrash, InjectionPoint::CreateHelper);
        assert!(out.passed(), "{}: {:?}", out.describe(), out.violations);
        assert!(out.recovery.is_some());
    }

    #[test]
    fn lcm_owner_crash_mid_deploy_still_completes() {
        let out = run_cell(13, FaultKind::LcmOwnerCrash, InjectionPoint::CreateLearners);
        assert!(out.passed(), "{}: {:?}", out.describe(), out.violations);
    }

    #[test]
    fn nfs_outage_at_provision_volume_still_completes() {
        let out = run_cell(12, FaultKind::NfsOutage, InjectionPoint::ProvisionVolume);
        assert!(out.passed(), "{}: {:?}", out.describe(), out.violations);
    }

    #[test]
    fn labels_are_distinct() {
        let kinds: std::collections::BTreeSet<_> = FaultKind::all()
            .iter()
            .map(super::FaultKind::label)
            .collect();
        assert_eq!(kinds.len(), FaultKind::all().len());
        let points: std::collections::BTreeSet<_> = InjectionPoint::all()
            .iter()
            .map(super::InjectionPoint::label)
            .collect();
        assert_eq!(points.len(), InjectionPoint::all().len());
    }
}
