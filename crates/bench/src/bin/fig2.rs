//! Regenerates Figure 2: DLaaS vs IBM Cloud bare metal on K80s.
//!
//! Usage: `cargo run -p dlaas-bench --bin fig2 [seed] [iterations] [trials] [--threads T]`
//!
//! Each paper cell was a single measured run; `seed` plays the role of
//! "which day the experiment ran" (it draws the per-run jitter). The
//! (repetition, cell) trials shard across `--threads` workers; the table
//! is byte-identical at any thread count.

use dlaas_bench::fig2;
use dlaas_bench::harness::print_table;

fn main() {
    let mut threads: usize = 1;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            threads = args
                .next()
                .and_then(|s| s.parse().ok())
                .expect("--threads T");
        } else {
            positional.push(arg);
        }
    }
    let mut positional = positional.into_iter();
    let seed: u64 = positional
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2018);
    let iterations: u64 = positional
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let trials: u64 = positional.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    eprintln!(
        "running {} full-stack training jobs (seed {seed}, {iterations} iters, {trials} trial(s), {threads} thread(s))…",
        8 * trials
    );
    let report = fig2::run_parallel(seed, iterations, trials, threads);
    eprintln!("{}", report.wall_summary("fig2"));
    let Some(trial_results) = fig2::by_repetition(&report, trials) else {
        eprintln!("\n{} abnormal trials:", report.abnormal().len());
        for r in report.failure_records() {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    };

    let rows: Vec<Vec<String>> = (0..trial_results[0].len())
        .map(|i| {
            let cell = &trial_results[0][i].cell;
            let pcts: Vec<f64> = trial_results.iter().map(|t| t[i].measured_pct).collect();
            let mean = pcts.iter().sum::<f64>() / pcts.len() as f64;
            let lo = pcts.iter().copied().fold(f64::MAX, f64::min);
            let hi = pcts.iter().copied().fold(f64::MIN, f64::max);
            let ours = if trials > 1 {
                format!("{mean:.2}% [{lo:.2}..{hi:.2}]")
            } else {
                format!("{mean:.2}%")
            };
            vec![
                cell.model.to_string(),
                cell.framework.to_string(),
                cell.gpus.to_string(),
                format!("{:.1}", trial_results[0][i].bare_metal),
                format!("{:.1}", trial_results[0][i].dlaas),
                ours,
                format!("{:.2}%", cell.paper_pct),
            ]
        })
        .collect();
    print_table(
        "Fig. 2 — Performance overhead of DLaaS vs bare metal (K80, 1GbE, COS data)",
        &[
            "Benchmark",
            "Framework",
            "#GPUs",
            "bare img/s",
            "DLaaS img/s",
            "diff (ours)",
            "diff (paper)",
        ],
        &rows,
    );

    let max = trial_results
        .iter()
        .flatten()
        .map(|r| r.measured_pct)
        .fold(f64::MIN, f64::max);
    println!("\nmax overhead: {max:.2}% — the paper's claim: overhead is minimal (≤ ~6%)");
}
