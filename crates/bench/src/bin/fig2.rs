//! Regenerates Figure 2: DLaaS vs IBM Cloud bare metal on K80s.
//!
//! Usage: `cargo run -p dlaas-bench --bin fig2 [seed] [iterations]`
//!
//! Each paper cell was a single measured run; `seed` plays the role of
//! "which day the experiment ran" (it draws the per-run jitter).

use dlaas_bench::fig2;
use dlaas_bench::harness::print_table;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2018);
    let iterations: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(400);
    let trials: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    eprintln!(
        "running {} full-stack training jobs (seed {seed}, {iterations} iters, {trials} trial(s))…",
        8 * trials
    );
    let trial_results: Vec<Vec<fig2::Fig2Result>> = (0..trials)
        .map(|t| fig2::run_all(seed + t, iterations))
        .collect();

    let rows: Vec<Vec<String>> = (0..trial_results[0].len())
        .map(|i| {
            let cell = &trial_results[0][i].cell;
            let pcts: Vec<f64> = trial_results.iter().map(|t| t[i].measured_pct).collect();
            let mean = pcts.iter().sum::<f64>() / pcts.len() as f64;
            let lo = pcts.iter().copied().fold(f64::MAX, f64::min);
            let hi = pcts.iter().copied().fold(f64::MIN, f64::max);
            let ours = if trials > 1 {
                format!("{mean:.2}% [{lo:.2}..{hi:.2}]")
            } else {
                format!("{mean:.2}%")
            };
            vec![
                cell.model.to_string(),
                cell.framework.to_string(),
                cell.gpus.to_string(),
                format!("{:.1}", trial_results[0][i].bare_metal),
                format!("{:.1}", trial_results[0][i].dlaas),
                ours,
                format!("{:.2}%", cell.paper_pct),
            ]
        })
        .collect();
    print_table(
        "Fig. 2 — Performance overhead of DLaaS vs bare metal (K80, 1GbE, COS data)",
        &[
            "Benchmark",
            "Framework",
            "#GPUs",
            "bare img/s",
            "DLaaS img/s",
            "diff (ours)",
            "diff (paper)",
        ],
        &rows,
    );

    let max = trial_results
        .iter()
        .flatten()
        .map(|r| r.measured_pct)
        .fold(f64::MIN, f64::max);
    println!("\nmax overhead: {max:.2}% — the paper's claim: overhead is minimal (≤ ~6%)");
}
