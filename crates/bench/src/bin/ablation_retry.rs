//! Ablation (§III-d): the Guardian's deploy-retry limit.
//!
//! The Guardian retries a failed deployment "a (configurable) number of
//! times before `[it]` gives up and marks the DL job in MongoDB as FAILED".
//! This sweep injects two Guardian crashes during deployment and varies
//! the limit: limits ≤ 2 burn out and fail the job; limits ≥ 3 ride the
//! faults out and complete it.
//!
//! Usage: `cargo run -p dlaas-bench --bin ablation_retry [seed]`

use std::cell::RefCell;
use std::rc::Rc;

use dlaas_bench::harness::print_table;
use dlaas_bench::harness::BENCH_KEY;
use dlaas_core::{
    paths, CoreConfig, DlaasPlatform, GpuNodeSpec, JobId, JobStatus, PlatformConfig, Tenant,
    TrainingManifest,
};
use dlaas_gpu::{DlModel, Framework, GpuKind};
use dlaas_kube::PodPhase;
use dlaas_sim::{Sim, SimDuration};

struct Outcome {
    limit: u32,
    crashes_injected: u32,
    status: JobStatus,
    attempts: u64,
    rollbacks: u64,
    gave_up: bool,
    wall_secs: f64,
}

fn run_one(seed: u64, limit: u32, crashes: u32) -> Outcome {
    let mut sim = Sim::new(seed);
    sim.trace_mut().set_enabled(false);
    let cfg = PlatformConfig {
        core: CoreConfig {
            deploy_max_attempts: limit,
            ..CoreConfig::default()
        },
        gpu_nodes: vec![GpuNodeSpec {
            kind: GpuKind::K80,
            count: 2,
            gpus_each: 1,
        }],
        ..PlatformConfig::default()
    };
    let platform = DlaasPlatform::new(&mut sim, cfg);
    platform.run_until_ready(&mut sim, SimDuration::from_secs(60));
    platform
        .add_tenant(&Tenant::new("bench", BENCH_KEY, 0))
        .expect("bootstrap tenant insert");
    platform.seed_dataset("bench-data", "d/", 2_000_000_000);
    platform.create_bucket("bench-results");

    let manifest = TrainingManifest::builder(format!("retry-{limit}"))
        .framework(Framework::TensorFlow)
        .model(DlModel::Resnet50)
        .gpus(GpuKind::K80, 1)
        .data("bench-data", "d/", 2_000_000_000)
        .results("bench-results")
        .iterations(500)
        .build()
        .expect("valid manifest");
    let client = platform.client("bench", BENCH_KEY);
    let got: Rc<RefCell<Option<JobId>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    client.submit(&mut sim, manifest, move |_s, r| {
        *g.borrow_mut() = Some(r.expect("accepted"));
    });
    sim.run_until_pred(|_| got.borrow().is_some());
    let job = got.borrow().clone().unwrap();
    let t0 = sim.now();
    let gpod = paths::guardian_job(&job);

    // Crash the Guardian during its first `crashes` deployment attempts.
    let mut injected = 0;
    while injected < crashes {
        let s = platform.wait_for_status(
            &mut sim,
            &job,
            JobStatus::Deploying,
            SimDuration::from_mins(10),
        );
        if s.is_some_and(dlaas_core::JobStatus::is_terminal) {
            break; // gave up before we could inject them all
        }
        if platform.kube().pod_phase(&gpod) == Some(PodPhase::Running) {
            platform.kube().crash_pod(&mut sim, &gpod);
            injected += 1;
            sim.run_for(SimDuration::from_secs(5));
        } else {
            sim.run_for(SimDuration::from_secs(1));
        }
    }

    let end = platform
        .wait_for_status(
            &mut sim,
            &job,
            JobStatus::Completed,
            SimDuration::from_hours(12),
        )
        .unwrap_or(JobStatus::Failed);
    // The attempt/rollback story comes from the platform's own metrics.
    let m = platform.metrics();
    Outcome {
        limit,
        crashes_injected: injected,
        status: end,
        attempts: m.counter_total(dlaas_core::metrics::GUARDIAN_DEPLOY_ATTEMPTS),
        rollbacks: m.counter_total(dlaas_core::metrics::GUARDIAN_ROLLBACKS),
        gave_up: m.counter_total(dlaas_core::metrics::GUARDIAN_GAVE_UP) > 0,
        wall_secs: (sim.now() - t0).as_secs_f64(),
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2018);
    eprintln!(
        "injecting 2 guardian crashes during deploy; sweeping the retry limit (seed {seed})…"
    );
    let rows: Vec<Vec<String>> = [1u32, 2, 3, 5]
        .iter()
        .map(|limit| {
            let o = run_one(seed, *limit, 2);
            vec![
                o.limit.to_string(),
                o.crashes_injected.to_string(),
                o.status.to_string(),
                o.attempts.to_string(),
                o.rollbacks.to_string(),
                if o.gave_up { "yes" } else { "no" }.to_owned(),
                format!("{:.0}s", o.wall_secs),
            ]
        })
        .collect();
    print_table(
        "Ablation — Guardian deploy-retry limit under 2 injected deploy crashes",
        &[
            "retry limit",
            "crashes injected",
            "job outcome",
            "attempts used",
            "rollbacks",
            "gave up",
            "time to terminal",
        ],
        &rows,
    );
    println!("\nlimits ≤ the fault count fail the job (after full rollback);\nlarger limits ride the faults out and complete it.");
}
