//! Traffic soak: realistic multi-tenant traffic — diurnal arrivals,
//! Pareto bursts, heavy-tailed durations, a whale/small tenant mix —
//! pushed through the full platform at N across two orders of
//! magnitude, with per-tenant GPU quotas and the weighted fair queue
//! engaged by the bursts.
//!
//! Emits two artifacts:
//!
//! * `BENCH_traffic.json` — byte-stable (sim-derived data only, fixed
//!   key order, fixed-precision floats): outcome counts, work-counter
//!   per-job costs, queue/admission figures and per-tenant turnaround
//!   quantiles. Byte-identical for a given seed at any `--threads`.
//! * `BENCH_traffic.wall.json` — the wall-clock sidecar
//!   (events-per-wall-second per run) for the machine-speed baseline
//!   gate; never byte-compared.
//!
//! The process exits non-zero if any trial is abnormal or malformed
//! (lost submissions, unfinished jobs, invariant violations), if the
//! per-job event cost at the largest N exceeds 2× the smallest N, or if
//! `--check` finds a regression against the committed baseline.
//!
//! Usage:
//!   traffic_soak [--threads T] [--check BASELINE [--tolerance 0.10]]
//!                [--write-baseline BASELINE] [seed] [N1,N2,...] [out.json]
//! Defaults: 1 thread, seed 2018, N ∈ {10000, 100000}, `BENCH_traffic.json`.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use dlaas_bench::harness::print_table;
use dlaas_bench::runner::{CampaignRunner, Trial, TrialRun};
use dlaas_bench::traffic::{self, Arrival, TenantSummary, TrafficConfig};
use dlaas_core::{
    check_invariants, metrics, DlaasPlatform, GpuNodeSpec, InvariantMonitor, JobStatus,
    PlatformConfig, Tenant, TrainingManifest,
};
use dlaas_gpu::{DlModel, Framework, GpuKind};
use dlaas_obs::wallclock::WallTimer;
use dlaas_sim::{Sim, SimDuration, SimTime};

/// Submissions stop at the window (2h); jobs then get a drain period to
/// finish queue waits, deploys and the duration tail. Identical for
/// every N so per-job costs are comparable across N.
const DRAIN: SimDuration = SimDuration::from_hours(1);

/// One work-count series, summarized from its `dlaas-obs` histogram.
struct Series {
    name: &'static str,
    sum: f64,
    per_job: f64,
}

struct Run {
    n: u64,
    submitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    unfinished: u64,
    /// Jobs held in the fair queue at least once.
    queued_submissions: u64,
    /// Merged admission-wait histogram (µs): count / mean / p95.
    admission_waits: u64,
    admission_wait_mean_us: f64,
    admission_wait_p95_us: f64,
    /// Distinct invariant violations (periodic monitor + final sweep).
    invariant_violations: u64,
    events: u64,
    sim_secs: f64,
    events_per_job: f64,
    tenants: Vec<TenantSummary>,
    series: Vec<Series>,
    wall_secs: f64,
}

impl Run {
    fn malformed(&self) -> bool {
        self.submitted != self.n
            || self.rejected > 0
            || self.unfinished > 0
            || self.invariant_violations > 0
    }

    fn events_per_wall_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

fn job_manifest(serial: u64, a: &Arrival) -> TrainingManifest {
    TrainingManifest::builder(format!("t-{serial}"))
        .framework(Framework::TensorFlow)
        .model(DlModel::Resnet50)
        .gpus(GpuKind::K80, 1)
        .learners(a.learners)
        .data("traffic-data", "d/", 500_000_000)
        .results("traffic-results")
        .iterations(a.iterations)
        .build()
        .expect("generated manifest is valid")
}

/// Invariant-monitor period: the checker walks every job document, so
/// at large N it must run sparsely (a final full sweep still closes the
/// run). Deterministic in N only — never in thread count.
fn monitor_period(n: u64) -> SimDuration {
    if n <= 20_000 {
        SimDuration::from_secs(60)
    } else if n <= 200_000 {
        SimDuration::from_mins(10)
    } else {
        SimDuration::from_mins(30)
    }
}

fn run_one(seed: u64, n: u64) -> TrialRun<Run> {
    let wall = WallTimer::start();
    let cfg = TrafficConfig::default();
    let mut sim = Sim::new(seed);
    sim.trace_mut().set_enabled(false);

    let capacity = cfg.capacity_gpus(n);
    let platform_cfg = PlatformConfig {
        core_nodes: 4,
        gpu_nodes: vec![GpuNodeSpec {
            kind: GpuKind::K80,
            count: capacity.div_ceil(4).max(2),
            gpus_each: 4,
        }],
        ..PlatformConfig::default()
    };
    let platform = DlaasPlatform::new(&mut sim, platform_cfg);
    platform.run_until_ready(&mut sim, SimDuration::from_secs(60));

    let tenant_ids = cfg.tenant_ids();
    let mut clients = Vec::with_capacity(tenant_ids.len());
    for (i, id) in tenant_ids.iter().enumerate() {
        let key = format!("key-{id}");
        platform
            .add_tenant(
                &Tenant::new(id.clone(), key.clone(), cfg.quota_of(i, capacity))
                    .with_weight(cfg.weight_of(i)),
            )
            .expect("bootstrap tenant insert");
        clients.push(platform.client(id, &key));
    }
    platform.seed_dataset("traffic-data", "d/", 500_000_000);
    platform.create_bucket("traffic-results");

    let monitor = InvariantMonitor::install(&mut sim, &platform, monitor_period(n));

    // The whole schedule is precomputed from one rng fork: byte-identical
    // at any thread count by construction.
    let arrivals = traffic::generate(&mut sim.rng().fork("traffic-gen"), &cfg, n);
    let jobs: Rc<RefCell<Vec<(dlaas_core::JobId, usize)>>> =
        Rc::new(RefCell::new(Vec::with_capacity(n as usize)));
    let rejected = Rc::new(RefCell::new(0u64));
    for (serial, a) in arrivals.into_iter().enumerate() {
        let client = clients[a.tenant].clone();
        let jobs = jobs.clone();
        let rejected = rejected.clone();
        sim.schedule_in(a.at, move |sim| {
            let tenant = a.tenant;
            let m = job_manifest(serial as u64, &a);
            client.submit(sim, m, move |_sim, r| match r {
                Ok(job) => jobs.borrow_mut().push((job, tenant)),
                Err(_) => *rejected.borrow_mut() += 1,
            });
        });
    }
    sim.run_for(cfg.window + DRAIN);

    let (mut completed, mut failed, mut unfinished) = (0u64, 0u64, 0u64);
    for (job, _) in jobs.borrow().iter() {
        match platform.job_status(job) {
            Some(JobStatus::Completed) => completed += 1,
            Some(JobStatus::Failed | JobStatus::Killed) => failed += 1,
            _ => unfinished += 1,
        }
    }

    // Close the run with one full sweep, then fold in everything the
    // periodic monitor saw that the final state no longer shows.
    monitor.cancel();
    let final_report = check_invariants(&sim, &platform);
    let invariant_violations =
        (monitor.violations_seen() as u64).max(final_report.violations.len() as u64);
    if !final_report.is_clean() {
        eprintln!("{final_report}");
    }

    let m = platform.metrics();
    let tenants = tenant_ids
        .iter()
        .map(|id| {
            let labels = [("tenant", id.as_str())];
            let h = m.histogram(metrics::TENANT_JOB_TURNAROUND, &labels);
            TenantSummary {
                tenant: id.clone(),
                jobs: h.as_ref().map_or(0, dlaas_obs::Histogram::count),
                p50: h.as_ref().and_then(|h| h.quantile(0.50)).unwrap_or(0.0),
                p95: h.as_ref().and_then(|h| h.quantile(0.95)).unwrap_or(0.0),
                p99: h.as_ref().and_then(|h| h.quantile(0.99)).unwrap_or(0.0),
            }
        })
        .collect();

    let series = [
        (
            "etcd_watch_fanout_examined",
            m.histogram_merged("etcd_watch_fanout_examined"),
        ),
        (
            "kube_kick_pending_examined",
            m.histogram_merged("kube_kick_pending_examined"),
        ),
        (
            "lcm_sweep_docs_examined",
            m.histogram("mongo_docs_examined", &[("op", "find_changed")]),
        ),
    ]
    .into_iter()
    .map(|(name, h)| {
        let sum = h.map(|h| h.sum()).unwrap_or(0.0);
        Series {
            name,
            sum,
            per_job: sum / n as f64,
        }
    })
    .collect();

    let wait = m.histogram_merged(metrics::TENANT_ADMISSION_WAIT);
    let events = sim.events_executed();
    let run = Run {
        n,
        submitted: jobs.borrow().len() as u64,
        rejected: *rejected.borrow(),
        completed,
        failed,
        unfinished,
        queued_submissions: m.counter_value(metrics::API_SUBMISSIONS, &[("outcome", "queued")]),
        admission_waits: wait.as_ref().map_or(0, dlaas_obs::Histogram::count),
        admission_wait_mean_us: wait
            .as_ref()
            .and_then(dlaas_sim::Histogram::mean)
            .unwrap_or(0.0),
        admission_wait_p95_us: wait.as_ref().and_then(|h| h.quantile(0.95)).unwrap_or(0.0),
        invariant_violations,
        events,
        sim_secs: sim
            .now()
            .saturating_duration_since(SimTime::ZERO)
            .as_secs_f64(),
        events_per_job: events as f64 / n as f64,
        tenants,
        series,
        wall_secs: wall.elapsed_secs(),
    };
    TrialRun {
        result: run,
        sim_elapsed: sim.now().saturating_duration_since(SimTime::ZERO),
    }
}

/// Hand-rolled JSON with fixed key order and fixed-precision floats; no
/// wall-clock and no thread count, so `cmp` works across same-seed runs.
fn render_json(seed: u64, cfg: &TrafficConfig, runs: &[&Run]) -> String {
    let mut out = String::new();
    let mut w = |s: &str| out.push_str(s);
    w("{\n");
    w(&format!(
        "  \"bench\": \"traffic_soak\",\n  \"seed\": {seed},\n  \"window_secs\": {:.6},\n  \"drain_secs\": {:.6},\n  \"runs\": [\n",
        cfg.window.as_secs_f64(),
        DRAIN.as_secs_f64()
    ));
    for (ri, r) in runs.iter().enumerate() {
        w("    {\n");
        w(&format!(
            "      \"run\": \"n{}\",\n      \"n\": {},\n      \"completed\": {},\n      \"failed\": {},\n      \"unfinished\": {},\n      \"queued_submissions\": {},\n      \"admission_waits\": {},\n      \"admission_wait_mean_us\": {:.6},\n      \"admission_wait_p95_us\": {:.6},\n      \"invariant_violations\": {},\n      \"events\": {},\n      \"sim_secs\": {:.6},\n      \"events_per_job\": {:.6},\n",
            r.n,
            r.n,
            r.completed,
            r.failed,
            r.unfinished,
            r.queued_submissions,
            r.admission_waits,
            r.admission_wait_mean_us,
            r.admission_wait_p95_us,
            r.invariant_violations,
            r.events,
            r.sim_secs,
            r.events_per_job,
        ));
        w("      \"tenants\": [\n");
        for (ti, t) in r.tenants.iter().enumerate() {
            let mut line = String::new();
            write!(
                line,
                "        {{\"tenant\": \"{}\", \"jobs\": {}, \"p50\": {:.6}, \"p95\": {:.6}, \"p99\": {:.6}}}",
                t.tenant, t.jobs, t.p50, t.p95, t.p99
            )
            .unwrap();
            w(&line);
            w(if ti + 1 < r.tenants.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        w("      ],\n      \"series\": {\n");
        for (si, s) in r.series.iter().enumerate() {
            let mut line = String::new();
            write!(
                line,
                "        \"{}\": {{\"sum\": {:.6}, \"per_job\": {:.6}}}",
                s.name, s.sum, s.per_job
            )
            .unwrap();
            w(&line);
            w(if si + 1 < r.series.len() { ",\n" } else { "\n" });
        }
        w("      }\n");
        w(if ri + 1 < runs.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    w("  ]\n}\n");
    out
}

/// Wall sidecar in the engine-bench `workloads` shape so the same
/// baseline checker applies.
fn render_wall_json(seed: u64, runs: &[&Run]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    write!(
        out,
        "  \"bench\": \"traffic_soak-wall\",\n  \"seed\": {seed},\n  \"workloads\": [\n"
    )
    .unwrap();
    for (i, r) in runs.iter().enumerate() {
        let mut line = String::new();
        write!(
            line,
            "    {{\"name\": \"n{}\", \"events\": {}, \"sim_secs\": {:.6}, \"wall_secs\": {:.6}, \"events_per_wall_sec\": {:.1}}}",
            r.n,
            r.events,
            r.sim_secs,
            r.wall_secs,
            r.events_per_wall_sec()
        )
        .unwrap();
        out.push_str(&line);
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut threads: usize = 1;
    let mut check: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut tolerance = 0.10;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--threads T");
            }
            "--check" => check = Some(args.next().expect("--check BASELINE")),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--tolerance X");
            }
            "--write-baseline" => {
                write_baseline = Some(args.next().expect("--write-baseline BASELINE"));
            }
            _ => positional.push(arg),
        }
    }
    let mut positional = positional.into_iter();
    let seed: u64 = positional
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2018);
    let ns: Vec<u64> = positional
        .next()
        .map(|s| s.split(',').filter_map(|p| p.parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| vec![10_000, 100_000]);
    let out_path = positional
        .next()
        .unwrap_or_else(|| "BENCH_traffic.json".into());
    let wall_path = out_path
        .strip_suffix(".json")
        .map(|p| format!("{p}.wall.json"))
        .unwrap_or_else(|| format!("{out_path}.wall"));

    let cfg = TrafficConfig::default();
    eprintln!("traffic soak: N in {ns:?} (seed {seed}, {threads} thread(s))…");
    let trials: Vec<Trial<u64>> = ns
        .iter()
        .map(|&n| Trial {
            label: format!("n{n}"),
            repro: format!(
                "cargo run --release -p dlaas-bench --bin traffic_soak -- {seed} {n} traffic-repro.json"
            ),
            spec: n,
        })
        .collect();
    // Every trial simulates boot + window + drain; anything past an
    // extra hour of sim time is a runaway.
    let report = CampaignRunner::new("traffic_soak", threads)
        .with_sim_budget(cfg.window + DRAIN + SimDuration::from_hours(1))
        .run(trials, |&n, _ctx| run_one(seed, n));
    let runs: Vec<&Run> = report.results().collect();

    let mut rows = Vec::new();
    for r in &runs {
        let whale_p99 = r
            .tenants
            .first()
            .map(|t| format!("{:.0}", t.p99))
            .unwrap_or_default();
        rows.push(vec![
            r.n.to_string(),
            format!("{}/{}/{}", r.completed, r.failed, r.unfinished),
            r.queued_submissions.to_string(),
            format!("{:.1}", r.admission_wait_mean_us / 1e6),
            whale_p99,
            format!("{:.0}", r.events_per_job),
            r.invariant_violations.to_string(),
        ]);
    }
    print_table(
        "Traffic soak: multi-tenant fairness under NSML-style load",
        &[
            "N",
            "done/failed/unfinished",
            "queued",
            "mean wait s",
            "whale p99 s",
            "events/job",
            "violations",
        ],
        &rows,
    );

    let json = render_json(seed, &cfg, &runs);
    std::fs::write(&out_path, &json).expect("write BENCH_traffic.json");
    let wall_json = render_wall_json(seed, &runs);
    std::fs::write(&wall_path, &wall_json).expect("write wall sidecar");
    println!("\nwrote {out_path} and {wall_path}");
    eprintln!("{}", report.wall_summary("traffic_soak"));

    let mut dirty = false;
    let abnormal = report.failure_records();
    if !abnormal.is_empty() {
        eprintln!("\n{} abnormal trials:", abnormal.len());
        for r in &abnormal {
            eprintln!("  {r}");
        }
        dirty = true;
    }
    for r in &runs {
        if r.malformed() {
            eprintln!(
                "  MALFORMED N={}: submitted={}/{} rejected={} unfinished={} violations={}",
                r.n, r.submitted, r.n, r.rejected, r.unfinished, r.invariant_violations
            );
            dirty = true;
        }
    }

    // Flat-curve criterion: per-job event cost at the largest N must be
    // within 2× of the smallest (+1 guards emptiness), and so must every
    // work-counter series.
    if let (Some(lo), Some(hi)) = (
        runs.iter().min_by_key(|r| r.n),
        runs.iter().max_by_key(|r| r.n),
    ) {
        if lo.n < hi.n {
            let ratio = (hi.events_per_job + 1.0) / (lo.events_per_job + 1.0);
            println!(
                "events/job: {:.0} @ N={} vs {:.0} @ N={} (×{ratio:.2})",
                lo.events_per_job, lo.n, hi.events_per_job, hi.n
            );
            if ratio > 2.0 {
                eprintln!(
                    "REGRESSION events/job grew ×{ratio:.2} from N={} to N={}",
                    lo.n, hi.n
                );
                dirty = true;
            }
            for (a, b) in lo.series.iter().zip(hi.series.iter()) {
                let ratio = (b.per_job + 1.0) / (a.per_job + 1.0);
                println!(
                    "{}: {:.2}/job @ N={} vs {:.2}/job @ N={} (×{ratio:.2})",
                    a.name, a.per_job, lo.n, b.per_job, hi.n
                );
                if ratio > 2.0 {
                    eprintln!(
                        "REGRESSION {}: per-job cost grew ×{ratio:.2} from N={} to N={}",
                        a.name, lo.n, hi.n
                    );
                    dirty = true;
                }
            }
        }
    }

    if let Some(path) = write_baseline {
        let rates: Vec<(String, f64)> = runs
            .iter()
            .map(|r| (format!("n{}", r.n), r.events_per_wall_sec()))
            .collect();
        let p99s: Vec<(String, String, f64)> = runs
            .iter()
            .flat_map(|r| {
                r.tenants
                    .iter()
                    .map(|t| (format!("n{}", r.n), t.tenant.clone(), t.p99))
            })
            .collect();
        let baseline = traffic::render_baseline(&rates, &p99s);
        std::fs::write(&path, baseline).expect("write baseline");
        println!("wrote baseline {path}");
    }

    if let Some(path) = check {
        let baseline = std::fs::read_to_string(&path).expect("read baseline");
        match traffic::check_against_baseline(&wall_json, &json, &baseline, tolerance) {
            Ok(lines) => {
                for l in lines {
                    println!("{l}");
                }
            }
            Err(violations) => {
                for v in violations {
                    eprintln!("{v}");
                }
                dirty = true;
            }
        }
    }

    if dirty {
        std::process::exit(1);
    }
}
