//! Engine throughput bench: emits `BENCH_engine.json` with kernel events
//! per wall-second for a pure-kernel churn workload and the full-platform
//! `scale_soak`-shaped N-job soak. See `dlaas_bench::engine` for the
//! workload definitions and the artifact's (wall-derived, not
//! byte-stable) nature.
//!
//! Usage:
//!   cargo run --release -p dlaas-bench --bin engine_bench -- \
//!     [--seed S] [--n N] [--actors A] [--events E] [--out PATH] \
//!     [--skip-platform] [--check BASELINE.json] [--tolerance F]
//!
//! Defaults: seed 2018, N=10000 platform jobs, 10000 churn actors,
//! 2,000,000 churn events, out `BENCH_engine.json`, tolerance 0.10.
//! With `--check`, exits non-zero if any workload's events/wall-sec falls
//! more than the tolerance below the committed baseline.

use dlaas_bench::engine::{self, EngineRun};
use dlaas_bench::harness::print_table;

struct Args {
    seed: u64,
    n: u64,
    actors: u64,
    events: u64,
    out: String,
    skip_platform: bool,
    check: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        seed: 2018,
        n: 10_000,
        actors: 10_000,
        events: 2_000_000,
        out: "BENCH_engine.json".into(),
        skip_platform: false,
        check: None,
        tolerance: 0.10,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--seed" => parsed.seed = next("--seed").parse().expect("--seed u64"),
            "--n" => parsed.n = next("--n").parse().expect("--n u64"),
            "--actors" => parsed.actors = next("--actors").parse().expect("--actors u64"),
            "--events" => parsed.events = next("--events").parse().expect("--events u64"),
            "--out" => parsed.out = next("--out"),
            "--skip-platform" => parsed.skip_platform = true,
            "--check" => parsed.check = Some(next("--check")),
            "--tolerance" => {
                parsed.tolerance = next("--tolerance").parse().expect("--tolerance f64");
            }
            other => panic!("unknown flag {other}"),
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    eprintln!(
        "engine bench: kernel_churn ({} actors, {} events){} (seed {})…",
        args.actors,
        args.events,
        if args.skip_platform {
            String::new()
        } else {
            format!(" + platform_soak N={}", args.n)
        },
        args.seed
    );

    let mut runs: Vec<EngineRun> = Vec::new();
    runs.push(engine::kernel_churn(args.seed, args.actors, args.events));
    if !args.skip_platform {
        runs.push(engine::platform_soak(args.seed, args.n));
    }

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.events.to_string(),
                format!("{:.1}", r.sim_secs),
                format!("{:.2}", r.wall_secs),
                format!("{:.0}", r.events_per_wall_sec()),
            ]
        })
        .collect();
    print_table(
        "Engine throughput (kernel events per host wall-second)",
        &["workload", "events", "sim s", "wall s", "ev/wall-s"],
        &rows,
    );

    let json = engine::render_json(args.seed, &runs);
    std::fs::write(&args.out, &json).expect("write BENCH_engine.json");
    println!("\nwrote {}", args.out);

    if let Some(baseline_path) = args.check {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        match engine::check_against_baseline(&json, &baseline, args.tolerance) {
            Ok(report) => {
                for line in report {
                    println!("{line}");
                }
            }
            Err(violations) => {
                for line in violations {
                    eprintln!("{line}");
                }
                eprintln!(
                    "engine bench regression vs {baseline_path} (tolerance {:.0}%)",
                    args.tolerance * 100.0
                );
                std::process::exit(1);
            }
        }
    }
}
