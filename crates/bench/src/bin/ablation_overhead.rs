//! Sensitivity analysis behind Fig. 2: where does the DLaaS overhead
//! come from? With run-to-run jitter switched off, the measured overhead
//! decomposes exactly into containerization (fixed ~0.8%) plus the
//! helper-interference (CPU-steal) term, which this sweep varies.
//!
//! Usage: `cargo run --release -p dlaas-bench --bin ablation_overhead [seed]`

use dlaas_bench::harness::{
    bare_metal_images_per_sec, measure_dlaas_throughput_with, pct_diff, print_table,
    throughput_manifest,
};
use dlaas_core::CoreConfig;
use dlaas_gpu::{DlModel, ExecEnv, Framework, GpuKind};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2018);
    eprintln!("sweeping helper interference with jitter off (seed {seed})…");

    let bare = bare_metal_images_per_sec(
        seed,
        DlModel::Resnet50,
        Framework::TensorFlow,
        GpuKind::K80,
        1,
        ExecEnv::bare_metal_streaming(0.117e9),
        0.0, // jitter off: isolate the systematic terms
    );

    let rows: Vec<Vec<String>> = [0.0f64, 0.004, 0.008, 0.016, 0.032]
        .iter()
        .map(|steal| {
            let cfg = CoreConfig {
                helper_steal: *steal,
                throughput_jitter: 0.0,
                ..CoreConfig::default()
            };
            let manifest = throughput_manifest(
                DlModel::Resnet50,
                Framework::TensorFlow,
                GpuKind::K80,
                1,
                300,
            );
            let run = measure_dlaas_throughput_with(seed, manifest, cfg);
            let dlaas = run.images_per_sec.expect("job completes");
            let measured = pct_diff(bare, dlaas);
            let predicted = (1.0 - dlaas_gpu::CONTAINER_FACTOR * (1.0 - steal)) * 100.0;
            vec![
                format!("{:.1}%", steal * 100.0),
                format!("{dlaas:.2}"),
                format!("{measured:.2}%"),
                format!("{predicted:.2}%"),
            ]
        })
        .collect();
    print_table(
        "Sensitivity — DLaaS overhead vs helper interference (jitter off, ResNet-50/TF/1xK80)",
        &[
            "helper steal",
            "DLaaS img/s",
            "measured overhead",
            "container+steal model",
        ],
        &rows,
    );
    println!("\nwith noise removed, measured overhead equals the container+steal model —\nFig. 2's scatter is run-to-run measurement noise on top of this floor.");
}
