//! Ablation (§III-g): checkpoint interval vs work lost to a crash.
//!
//! "The checkpointing interval depends on the tolerance level of the user
//! to failures, i.e., how many hours of work the user is willing to lose
//! in the event of a failure." This sweep quantifies the trade-off: more
//! frequent checkpoints cost upload stalls during healthy training but
//! bound the work a learner crash destroys.
//!
//! Usage: `cargo run -p dlaas-bench --bin ablation_checkpoint [seed]`

use std::cell::RefCell;
use std::rc::Rc;

use dlaas_bench::harness::{experiment_platform, print_table, BENCH_KEY};
use dlaas_core::{paths, JobId, JobStatus, TrainingManifest};
use dlaas_gpu::{DlModel, Framework, GpuKind};
use dlaas_sim::{Sim, SimDuration};

struct Outcome {
    interval: u64,
    completed: bool,
    wall_secs: f64,
    lost_iters: u64,
    restarts: u64,
    ckpt_writes: u64,
    stall_p95: Option<f64>,
}

fn run_one(seed: u64, interval: u64) -> Outcome {
    let mut sim = Sim::new(seed);
    sim.trace_mut().set_enabled(false);
    let platform = experiment_platform(&mut sim, GpuKind::K80, 1);
    let manifest = TrainingManifest::builder(format!("ckpt-{interval}"))
        .framework(Framework::TensorFlow)
        .model(DlModel::Resnet50)
        .gpus(GpuKind::K80, 1)
        .data("bench-data", "d/", 2_000_000_000)
        .results("bench-results")
        .iterations(4_000)
        .checkpoint_every(interval)
        .build()
        .expect("valid manifest");

    let client = platform.client("bench", BENCH_KEY);
    let got: Rc<RefCell<Option<JobId>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    client.submit(&mut sim, manifest, move |_s, r| {
        *g.borrow_mut() = Some(r.expect("accepted"));
    });
    sim.run_until_pred(|_| got.borrow().is_some());
    let job = got.borrow().clone().unwrap();
    let t0 = sim.now();

    platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Processing,
        SimDuration::from_mins(30),
    );
    // Crash the learner half-way through the expected training time.
    sim.run_for(SimDuration::from_mins(40));
    let progress_at_crash = platform.job_info(&job).map(|i| i.iteration).unwrap_or(0);
    let ckpt_iter: u64 = platform
        .objstore()
        .read_text("bench-results", &paths::obj_ckpt_meta(&job))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    platform
        .kube()
        .crash_pod(&mut sim, &paths::learner_pod(&job, 0));

    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(12),
    );
    let info = platform.job_info(&job).unwrap();
    let m = platform.metrics();
    Outcome {
        interval,
        completed: end == Some(JobStatus::Completed),
        wall_secs: (sim.now() - t0).as_secs_f64(),
        lost_iters: progress_at_crash.saturating_sub(ckpt_iter),
        restarts: info.learner_restarts,
        ckpt_writes: m.counter_total(dlaas_core::metrics::CHECKPOINT_WRITES),
        stall_p95: m.quantile(dlaas_core::metrics::CHECKPOINT_STALL_SECONDS, &[], 0.95),
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2018);
    let intervals = [0u64, 100, 250, 500, 1000, 2000];
    eprintln!("sweeping checkpoint intervals with a learner crash mid-run (seed {seed})…");
    let rows: Vec<Vec<String>> = intervals
        .iter()
        .map(|i| {
            let o = run_one(seed, *i);
            vec![
                if o.interval == 0 {
                    "none".to_owned()
                } else {
                    o.interval.to_string()
                },
                if o.completed { "COMPLETED" } else { "DNF" }.to_owned(),
                format!("{:.0}s", o.wall_secs),
                o.lost_iters.to_string(),
                o.restarts.to_string(),
                o.ckpt_writes.to_string(),
                o.stall_p95
                    .map(|s| format!("{s:.1}s"))
                    .unwrap_or_else(|| "n/a".into()),
            ]
        })
        .collect();
    print_table(
        "Ablation — checkpoint interval vs work lost to a learner crash (4000 iters)",
        &[
            "ckpt every",
            "outcome",
            "total time",
            "iters lost at crash",
            "restarts",
            "ckpt writes",
            "stall p95",
        ],
        &rows,
    );
    println!("\nno checkpoints ⇒ the crash loses all progress; tighter intervals bound the loss\nat the cost of checkpoint-upload stalls during healthy training.");
}
