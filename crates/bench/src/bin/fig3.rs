//! Regenerates Figure 3: DLaaS (PCIe P100) vs NVIDIA DGX-1 (NVLink).
//!
//! Usage: `cargo run -p dlaas-bench --bin fig3 [seed] [iterations]`

use dlaas_bench::fig3;
use dlaas_bench::harness::print_table;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2018);
    let iterations: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(400);
    let trials: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    eprintln!(
        "running {} full-stack training jobs (seed {seed}, {iterations} iters, {trials} trial(s))…",
        6 * trials
    );
    let trial_results: Vec<Vec<fig3::Fig3Result>> = (0..trials)
        .map(|t| fig3::run_all(seed + t, iterations))
        .collect();
    let results = &trial_results[0];

    let rows: Vec<Vec<String>> = results
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let pcts: Vec<f64> = trial_results.iter().map(|t| t[i].measured_pct).collect();
            let mean = pcts.iter().sum::<f64>() / pcts.len() as f64;
            let lo = pcts.iter().copied().fold(f64::MAX, f64::min);
            let hi = pcts.iter().copied().fold(f64::MIN, f64::max);
            let ours = if trials > 1 {
                format!("{mean:.2}% [{lo:.2}..{hi:.2}]")
            } else {
                format!("{mean:.2}%")
            };
            vec![
                r.cell.model.to_string(),
                "TensorFlow".to_owned(),
                r.cell.gpus.to_string(),
                "P100".to_owned(),
                format!("{:.1}", r.dgx1),
                format!("{:.1}", r.dlaas),
                ours,
                format!("{:.2}%", r.cell.paper_pct),
            ]
        })
        .collect();
    print_table(
        "Fig. 3 — DLaaS vs NVIDIA DGX-1 bare metal (TensorFlow HPM benchmarks)",
        &[
            "Benchmark",
            "Framework",
            "#GPUs",
            "GPU",
            "DGX-1 img/s",
            "DLaaS img/s",
            "diff (ours)",
            "diff (paper)",
        ],
        &rows,
    );
    println!(
        "\nshape check: deficit grows with GPU count, worst for VGG-16, ≤ ~15% \
         (the DGX-1 costs 2-3x more — the paper's cost-effectiveness argument)"
    );
}
