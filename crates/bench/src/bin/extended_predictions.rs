//! Beyond the paper: predictions for hardware/frameworks the paper
//! mentions but does not evaluate — V100 parts (DGX-1V), Horovod's
//! overlapped allreduce, and 10 GbE / InfiniBand cluster fabrics for
//! distributed jobs. These are forward-looking outputs of the calibrated
//! performance model (the paper's §I motivates exactly these trends:
//! NVLink, InfiniBand, 100G Ethernet).
//!
//! Usage: `cargo run --release -p dlaas-bench --bin extended_predictions`

use dlaas_bench::harness::print_table;
use dlaas_gpu::{
    images_per_sec, DlModel, ExecEnv, Framework, GpuKind, Interconnect, TrainingConfig,
};

fn main() {
    // 1. The Fig. 3 experiment projected onto V100s.
    let mut rows = Vec::new();
    for model in DlModel::all() {
        for gpus in [1u32, 2, 4] {
            let pcie = TrainingConfig::new(model, Framework::TensorFlow, GpuKind::V100Pcie, gpus);
            let dgx = TrainingConfig::new(model, Framework::TensorFlow, GpuKind::V100Sxm2, gpus);
            let dlaas = images_per_sec(&pcie, &ExecEnv::dlaas(0.117e9, 0.008));
            let bare = images_per_sec(&dgx, &ExecEnv::bare_metal());
            rows.push(vec![
                model.to_string(),
                gpus.to_string(),
                format!("{bare:.0}"),
                format!("{dlaas:.0}"),
                format!("{:.1}%", (bare - dlaas) / bare * 100.0),
            ]);
        }
    }
    print_table(
        "Prediction — DLaaS (PCIe V100) vs DGX-1V (NVLink V100), TensorFlow",
        &[
            "Benchmark",
            "#GPUs",
            "DGX-1V img/s",
            "DLaaS img/s",
            "deficit",
        ],
        &rows,
    );

    // 2. Distributed scaling vs cluster fabric (the paper's §I point about
    //    Infiniband/fast Ethernet enabling distributed training).
    let mut rows = Vec::new();
    for fabric in [
        Interconnect::Ethernet1G,
        Interconnect::Ethernet10G,
        Interconnect::InfinibandEdr,
    ] {
        for learners in [1u32, 2, 4, 8] {
            let mut cfg = TrainingConfig::new(
                DlModel::Resnet50,
                Framework::TensorFlow,
                GpuKind::P100Pcie,
                1,
            )
            .distributed(learners);
            cfg.inter_interconnect = fabric;
            let rate = images_per_sec(&cfg, &ExecEnv::bare_metal());
            let ideal = images_per_sec(
                &TrainingConfig::new(
                    DlModel::Resnet50,
                    Framework::TensorFlow,
                    GpuKind::P100Pcie,
                    1,
                ),
                &ExecEnv::bare_metal(),
            ) * learners as f64;
            rows.push(vec![
                fabric.to_string(),
                learners.to_string(),
                format!("{rate:.0}"),
                format!("{:.0}%", rate / ideal * 100.0),
            ]);
        }
    }
    print_table(
        "Prediction — distributed ResNet-50 scaling efficiency by cluster fabric",
        &["fabric", "learners", "img/s", "scaling efficiency"],
        &rows,
    );

    // 3. Horovod's overlap advantage on communication-bound VGG-16.
    let mut rows = Vec::new();
    for fw in [Framework::TensorFlow, Framework::Horovod] {
        for learners in [2u32, 4, 8] {
            let mut cfg =
                TrainingConfig::new(DlModel::Vgg16, fw, GpuKind::P100Pcie, 1).distributed(learners);
            cfg.inter_interconnect = Interconnect::Ethernet10G;
            let rate = images_per_sec(&cfg, &ExecEnv::bare_metal());
            rows.push(vec![
                fw.to_string(),
                learners.to_string(),
                format!("{rate:.0}"),
            ]);
        }
    }
    print_table(
        "Prediction — VGG-16 over 10GbE: Horovod's comm overlap vs stock TF",
        &["framework", "learners", "img/s"],
        &rows,
    );

    println!("\nThese extend the paper's calibrated model; no measured counterpart exists.");
}
