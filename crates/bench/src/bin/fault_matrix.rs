//! The fault-matrix campaign: every fault kind × every Guardian
//! deployment step × N seeds, each trial judged by the platform
//! invariant checker; optionally a randomized soak with continuous
//! checking.
//!
//! Usage:
//!   cargo run --release -p dlaas-bench --bin fault_matrix [--seeds N] [--base-seed S] [--soak HOURS]
//!
//! Without `--soak` the full matrix runs and the process exits non-zero
//! if any cell fails (job did not complete, the fault never fired, or an
//! invariant was violated afterwards). With `--soak HOURS` a randomized
//! chaos soak runs instead, with the invariant monitor checking every
//! simulated minute.

use dlaas_bench::harness::print_table;
use dlaas_bench::matrix::{
    soak, sweep, CellOutcome, FaultKind, InjectionPoint, MATRIX_RECOVERY_SECONDS,
};

fn main() {
    let mut seeds: u64 = 5;
    let mut base_seed: u64 = 2018;
    let mut soak_hours: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                seeds = args.next().and_then(|s| s.parse().ok()).expect("--seeds N");
            }
            "--base-seed" => {
                base_seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--base-seed S");
            }
            "--soak" => {
                soak_hours = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--soak HOURS"),
                );
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    if let Some(hours) = soak_hours {
        run_soak(base_seed, hours);
    } else {
        run_matrix(base_seed, seeds);
    }
}

fn run_matrix(base_seed: u64, seeds: u64) {
    let cells = FaultKind::all().len() * InjectionPoint::all().len();
    eprintln!("fault matrix: {cells} cells x {seeds} seeds (base seed {base_seed})…");
    let run = sweep(base_seed, seeds);

    // One row per (fault, point): pass count and recovery range from the
    // aggregated obs histogram.
    let mut rows = Vec::new();
    for kind in FaultKind::all() {
        for point in InjectionPoint::all() {
            let of_cell: Vec<&CellOutcome> = run
                .outcomes
                .iter()
                .filter(|o| o.kind == kind && o.point == point)
                .collect();
            let passed = of_cell.iter().filter(|o| o.passed()).count();
            let labels = [("fault", kind.label()), ("point", point.label())];
            let q = |q: f64| {
                run.metrics
                    .quantile(MATRIX_RECOVERY_SECONDS, &labels, q)
                    .map(|s| format!("{s:.1}s"))
                    .unwrap_or_else(|| "n/a".into())
            };
            rows.push(vec![
                kind.to_string(),
                point.to_string(),
                format!("{passed}/{}", of_cell.len()),
                q(0.5),
                q(0.95),
            ]);
        }
    }
    print_table(
        "Fault matrix (fault x deployment step)",
        &["fault", "injection point", "passed", "p50 rec", "p95 rec"],
        &rows,
    );

    let failures = run.failures();
    if !failures.is_empty() {
        eprintln!("\n{} failing cells:", failures.len());
        for f in &failures {
            eprintln!("  FAIL {}", f.describe());
            for v in &f.violations {
                eprintln!("       {v}");
            }
        }
        std::process::exit(1);
    }
    println!(
        "\nall {} trials completed with every platform invariant intact.",
        run.outcomes.len()
    );
}

fn run_soak(seed: u64, hours: u64) {
    eprintln!("randomized soak: {hours} simulated hours (seed {seed})…");
    let out = soak(seed, hours);
    print_table(
        "Chaos soak with continuous invariant checking",
        &["metric", "value"],
        &[
            vec!["jobs submitted".into(), out.submitted.to_string()],
            vec!["completed".into(), out.completed.to_string()],
            vec!["failed/killed".into(), out.failed.to_string()],
            vec!["unfinished".into(), out.unfinished.to_string()],
            vec![
                "violations (during)".into(),
                out.violations_during.to_string(),
            ],
            vec![
                "violations (final)".into(),
                out.final_violations.len().to_string(),
            ],
            vec![
                "guardian rollbacks".into(),
                out.metrics
                    .counter_total(dlaas_core::metrics::GUARDIAN_ROLLBACKS)
                    .to_string(),
            ],
            vec![
                "kube pod restarts".into(),
                out.metrics
                    .counter_total("kube_pod_restarts_total")
                    .to_string(),
            ],
        ],
    );
    if !out.clean() {
        for v in &out.final_violations {
            eprintln!("  VIOLATION {v}");
        }
        eprintln!("soak finished dirty");
        std::process::exit(1);
    }
    println!("\nsoak finished with every platform invariant intact.");
}
