//! The fault-matrix campaign: every fault kind × every Guardian
//! deployment step × N seeds, each trial judged by the platform
//! invariant checker; optionally a randomized soak with continuous
//! checking.
//!
//! Usage:
//!   cargo run --release -p dlaas-bench --bin fault_matrix [--seeds N] [--base-seed S]
//!       [--threads T] [--sim-budget-secs B] [--out FILE] [--fault LABEL]
//!   cargo run --release -p dlaas-bench --bin fault_matrix -- --trial FAULT/POINT --seed S
//!   cargo run --release -p dlaas-bench --bin fault_matrix -- --soak HOURS [--seeds N] [--seed S]
//!       [--lcm-replicas M]
//!
//! `--fault LABEL` restricts the matrix to one fault kind (the CI
//! `ha-smoke` job sweeps `lcm_owner_crash` alone on every push);
//! `--lcm-replicas M` boots each soak with M LCM replicas (the nightly
//! HA soak runs M=3 so shard takeover happens under chaos).
//!
//! Trials shard across `--threads` workers (each in its own `Sim`);
//! reports and the `--out` artifact are byte-identical for any thread
//! count. The process exits non-zero if any cell fails (job did not
//! complete, the fault never fired, or an invariant was violated
//! afterwards) **or** any trial was recorded abnormal — `TIMEOUT` past
//! the per-trial sim budget, or a panic converted into a failure record.
//! The budget defaults per mode (2h for a matrix cell, chaos horizon +
//! drain + 1h slack for a soak); `--sim-budget-secs B` overrides it and
//! `--sim-budget-secs 0` uncaps entirely.
//! Abnormal records print the exact single-threaded repro command, which
//! is what `--trial FAULT/POINT --seed S` replays.
//!
//! With `--soak HOURS` a randomized chaos soak runs instead (or `--seeds
//! N` of them in parallel), with the invariant monitor checking every
//! simulated minute.

use dlaas_bench::harness::print_table;
use dlaas_bench::matrix::{
    render_matrix_json, run_cell, soak_parallel_with, soak_with, sweep_parallel_for, CellOutcome,
    FaultKind, InjectionPoint, MatrixCampaign, MATRIX_RECOVERY_SECONDS,
};
use dlaas_sim::SimDuration;

/// Default per-trial sim budget for matrix cells: a healthy cell tops out
/// near 65 simulated minutes (60s boot + 1h status wait + GC settle), so
/// 2h flags genuine runaways without ever clipping a passing trial.
const MATRIX_BUDGET: SimDuration = SimDuration::from_hours(2);

fn main() {
    let mut seeds: Option<u64> = None;
    let mut base_seed: u64 = 2018;
    let mut soak_hours: Option<u64> = None;
    let mut threads: usize = 1;
    // None = not given on the command line; the dispatch below sizes a
    // default per mode (matrix cells and soaks have very different
    // healthy sim lengths). `Some(None)` = explicitly uncapped.
    let mut sim_budget: Option<Option<SimDuration>> = None;
    let mut trial: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut fault: Option<FaultKind> = None;
    let mut lcm_replicas: Option<u32> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fault" => {
                let label = args.next().expect("--fault LABEL");
                fault = Some(FaultKind::from_label(&label).unwrap_or_else(|| {
                    let kinds: Vec<_> = FaultKind::all().iter().map(FaultKind::label).collect();
                    panic!("--fault expects one of {kinds:?}, got {label:?}")
                }));
            }
            "--lcm-replicas" => {
                lcm_replicas = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--lcm-replicas M"),
                );
            }
            "--seeds" => {
                seeds = Some(args.next().and_then(|s| s.parse().ok()).expect("--seeds N"));
            }
            "--base-seed" | "--seed" => {
                base_seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--base-seed S");
            }
            "--soak" => {
                soak_hours = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--soak HOURS"),
                );
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--threads T");
            }
            "--sim-budget-secs" => {
                let secs: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--sim-budget-secs B");
                // 0 = uncapped; otherwise an explicit cap overrides the
                // mode-sized default.
                sim_budget = Some((secs > 0).then(|| SimDuration::from_secs(secs)));
            }
            "--trial" => {
                trial = Some(args.next().expect("--trial FAULT/POINT"));
            }
            "--out" => {
                out_path = Some(args.next().expect("--out FILE"));
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    if let Some(spec) = trial {
        run_single(base_seed, &spec);
    } else if let Some(hours) = soak_hours {
        // A soak legitimately runs its chaos horizon plus the 4h drain,
        // so the runaway cap must scale with the horizon (the fixed
        // matrix-cell budget used to be applied here and flagged every
        // multi-seed soak as a TIMEOUT).
        let budget = sim_budget.unwrap_or(Some(SimDuration::from_hours(hours + 5)));
        run_soak(
            base_seed,
            seeds.unwrap_or(1),
            hours,
            lcm_replicas,
            threads,
            budget,
        );
    } else {
        let kinds = fault.map_or_else(|| FaultKind::all().to_vec(), |k| vec![k]);
        run_matrix(
            &kinds,
            base_seed,
            seeds.unwrap_or(5),
            threads,
            sim_budget.unwrap_or(Some(MATRIX_BUDGET)),
            out_path.as_deref(),
        );
    }
}

/// Replays one matrix cell alone, single-threaded — the repro mode the
/// campaign's failure records point at.
fn run_single(seed: u64, spec: &str) {
    let (kind, point) = parse_trial(spec);
    eprintln!("single trial: {kind} at {point} (seed {seed})…");
    let out = run_cell(seed, kind, point);
    println!("{}", out.describe());
    for v in &out.violations {
        println!("  VIOLATION {v}");
    }
    if !out.passed() {
        std::process::exit(1);
    }
}

fn parse_trial(spec: &str) -> (FaultKind, InjectionPoint) {
    let parse = || {
        let (fault, point) = spec.split_once('/')?;
        Some((
            FaultKind::from_label(fault)?,
            InjectionPoint::from_label(point)?,
        ))
    };
    parse().unwrap_or_else(|| {
        let kinds: Vec<_> = FaultKind::all().iter().map(FaultKind::label).collect();
        let points: Vec<_> = InjectionPoint::all()
            .iter()
            .map(InjectionPoint::label)
            .collect();
        panic!("--trial expects FAULT/POINT with FAULT in {kinds:?} and POINT in {points:?}")
    })
}

/// Prints every abnormal (timeout/panic) record with its repro command
/// and returns whether any exist.
fn report_abnormal(records: &[String]) -> bool {
    if records.is_empty() {
        return false;
    }
    eprintln!("\n{} abnormal trials:", records.len());
    for r in records {
        eprintln!("  {r}");
    }
    true
}

fn run_matrix(
    kinds: &[FaultKind],
    base_seed: u64,
    seeds: u64,
    threads: usize,
    sim_budget: Option<SimDuration>,
    out_path: Option<&str>,
) {
    let cells = kinds.len() * InjectionPoint::all().len();
    eprintln!(
        "fault matrix: {cells} cells x {seeds} seeds (base seed {base_seed}, {threads} thread(s))…"
    );
    let campaign = sweep_parallel_for(kinds, base_seed, seeds, threads, sim_budget);
    let run = &campaign.run;

    // One row per (fault, point): pass count and recovery range from the
    // aggregated obs histogram.
    let mut rows = Vec::new();
    for &kind in kinds {
        for point in InjectionPoint::all() {
            let of_cell: Vec<&CellOutcome> = run
                .outcomes
                .iter()
                .filter(|o| o.kind == kind && o.point == point)
                .collect();
            let passed = of_cell.iter().filter(|o| o.passed()).count();
            let labels = [("fault", kind.label()), ("point", point.label())];
            let q = |q: f64| {
                run.metrics
                    .quantile(MATRIX_RECOVERY_SECONDS, &labels, q)
                    .map(|s| format!("{s:.1}s"))
                    .unwrap_or_else(|| "n/a".into())
            };
            rows.push(vec![
                kind.to_string(),
                point.to_string(),
                format!("{passed}/{}", of_cell.len()),
                q(0.5),
                q(0.95),
            ]);
        }
    }
    print_table(
        "Fault matrix (fault x deployment step)",
        &["fault", "injection point", "passed", "p50 rec", "p95 rec"],
        &rows,
    );

    if let Some(path) = out_path {
        let json = render_matrix_json(base_seed, seeds, &campaign);
        std::fs::write(path, &json).expect("write fault-matrix report");
        println!("\nwrote {path}");
    }
    // Wall-clock goes to stderr only — never into the byte-compared
    // report or artifact.
    eprintln!("{}", campaign.report.wall_summary("fault_matrix"));

    if !exit_matrix_clean(&campaign) {
        std::process::exit(1);
    }
    println!(
        "\nall {} trials completed with every platform invariant intact.",
        run.outcomes.len()
    );
}

fn exit_matrix_clean(campaign: &MatrixCampaign) -> bool {
    let abnormal = report_abnormal(&campaign.report.failure_records());
    let failures = campaign.run.failures();
    if !failures.is_empty() {
        eprintln!("\n{} failing cells:", failures.len());
        for f in &failures {
            eprintln!("  FAIL {}", f.describe());
            for v in &f.violations {
                eprintln!("       {v}");
            }
        }
    }
    !abnormal && failures.is_empty()
}

fn run_soak(
    seed: u64,
    seeds: u64,
    hours: u64,
    lcm_replicas: Option<u32>,
    threads: usize,
    sim_budget: Option<SimDuration>,
) {
    if seeds > 1 {
        run_soak_campaign(seed, seeds, hours, lcm_replicas, threads, sim_budget);
        return;
    }
    eprintln!("randomized soak: {hours} simulated hours (seed {seed})…");
    let out = soak_with(seed, hours, lcm_replicas);
    print_table(
        "Chaos soak with continuous invariant checking",
        &["metric", "value"],
        &[
            vec!["jobs submitted".into(), out.submitted.to_string()],
            vec!["completed".into(), out.completed.to_string()],
            vec!["failed/killed".into(), out.failed.to_string()],
            vec!["unfinished".into(), out.unfinished.to_string()],
            vec![
                "violations (during)".into(),
                out.violations_during.to_string(),
            ],
            vec![
                "violations (final)".into(),
                out.final_violations.len().to_string(),
            ],
            vec![
                "guardian rollbacks".into(),
                out.metrics
                    .counter_total(dlaas_core::metrics::GUARDIAN_ROLLBACKS)
                    .to_string(),
            ],
            vec![
                "kube pod restarts".into(),
                out.metrics
                    .counter_total("kube_pod_restarts_total")
                    .to_string(),
            ],
        ],
    );
    if !out.clean() {
        for v in &out.final_violations {
            eprintln!("  VIOLATION {v}");
        }
        eprintln!("soak finished dirty");
        std::process::exit(1);
    }
    println!("\nsoak finished with every platform invariant intact.");
}

fn run_soak_campaign(
    base_seed: u64,
    seeds: u64,
    hours: u64,
    lcm_replicas: Option<u32>,
    threads: usize,
    sim_budget: Option<SimDuration>,
) {
    eprintln!(
        "soak campaign: {seeds} soaks x {hours} simulated hours \
         (base seed {base_seed}, {threads} thread(s))…"
    );
    let report = soak_parallel_with(base_seed, seeds, hours, lcm_replicas, threads, sim_budget);
    let rows: Vec<Vec<String>> = report
        .results()
        .map(|s| {
            vec![
                s.seed.to_string(),
                s.submitted.to_string(),
                format!("{}/{}/{}", s.completed, s.failed, s.unfinished),
                s.violations_during.to_string(),
                s.final_violations.len().to_string(),
                s.pod_restarts.to_string(),
                if s.clean() { "clean" } else { "DIRTY" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Chaos soak campaign",
        &[
            "seed",
            "submitted",
            "done/failed/unfinished",
            "viol (during)",
            "viol (final)",
            "pod restarts",
            "verdict",
        ],
        &rows,
    );
    eprintln!("{}", report.wall_summary("chaos_soak"));

    let abnormal = report_abnormal(&report.failure_records());
    let dirty: Vec<String> = report
        .results()
        .filter(|s| !s.clean())
        .map(dlaas_bench::matrix::SoakSummary::describe)
        .collect();
    if !dirty.is_empty() {
        eprintln!("\n{} dirty soaks:", dirty.len());
        for d in &dirty {
            eprintln!("  DIRTY {d}");
        }
    }
    if abnormal || !dirty.is_empty() {
        std::process::exit(1);
    }
    println!("\nall {seeds} soaks finished with every platform invariant intact.");
}
