//! Regenerates Figure 4: crash-recovery time by component.
//!
//! Usage: `cargo run -p dlaas-bench --bin fig4 [seed] [trials] [--threads T]`
//!
//! Each component's recoveries run as one trial of the campaign runner
//! on its own fresh rig; the table is byte-identical at any thread count.

use dlaas_bench::fig4;
use dlaas_bench::harness::print_table;

fn main() {
    let mut threads: usize = 1;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            threads = args
                .next()
                .and_then(|s| s.parse().ok())
                .expect("--threads T");
        } else {
            positional.push(arg);
        }
    }
    let mut positional = positional.into_iter();
    let seed: u64 = positional
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2018);
    let trials: u32 = positional.next().and_then(|s| s.parse().ok()).unwrap_or(10);

    eprintln!(
        "crashing every component {trials}x on a live platform (seed {seed}, {threads} thread(s))…"
    );
    let run = fig4::run_parallel(seed, trials, threads);

    // Percentiles come from the platform's metrics histograms
    // (`bench_recovery_seconds{component=…}`), not from the raw samples.
    let q = |component: &fig4::Component, q: f64| {
        run.metrics
            .quantile(
                fig4::RECOVERY_SECONDS,
                &[("component", component.label())],
                q,
            )
            .map(|s| format!("{s:.1}s"))
            .unwrap_or_else(|| "n/a".into())
    };
    let rows: Vec<Vec<String>> = run
        .results
        .iter()
        .map(|r| {
            vec![
                r.component.to_string(),
                r.stats.range_secs(),
                q(&r.component, 0.50),
                q(&r.component, 0.95),
                q(&r.component, 0.99),
                r.component.paper_range().to_owned(),
            ]
        })
        .collect();
    print_table(
        "Fig. 4 — Time to recover from crash failures, by component",
        &[
            "Component",
            "measured (min-max)",
            "p50",
            "p95",
            "p99",
            "paper",
        ],
        &rows,
    );

    let d = fig4::guardian_creation_time(seed);
    println!(
        "\n§III-d claim: Guardian creation is quick — measured {:.1}s (paper: <3s)",
        d.as_secs_f64()
    );
}
