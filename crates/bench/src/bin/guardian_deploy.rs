//! Measures the §III-d claim: "Creation of the Guardian is a very quick
//! (less than 3s in our experiments) single step process."
//!
//! Usage: `cargo run -p dlaas-bench --bin guardian_deploy [trials]`

use dlaas_bench::fig4::guardian_creation_time;
use dlaas_faults::RecoveryStats;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let mut stats = RecoveryStats::new();
    for seed in 0..trials {
        stats.push(guardian_creation_time(1000 + seed));
    }
    println!("Guardian creation time (submit ACK -> guardian container running)");
    println!("  trials:   {trials}");
    println!("  measured: {}", stats.range_secs());
    println!("  mean:     {:.2}s", stats.mean().unwrap().as_secs_f64());
    println!("  paper:    < 3s");
    assert!(
        stats.max().unwrap() < dlaas_sim::SimDuration::from_secs(3),
        "claim violated"
    );
}
