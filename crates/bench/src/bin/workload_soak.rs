//! Workload soak: a Poisson stream of mixed training jobs against a
//! shared cluster for several simulated hours, with optional chaos.
//! Reports completion, turnaround and platform health — the capacity /
//! dependability view an operator of the paper's platform would watch.
//!
//! Usage: `cargo run --release -p dlaas-bench --bin workload_soak [seed] [hours] [chaos:0|1]`

use dlaas_bench::harness::{print_table, BENCH_KEY};
use dlaas_bench::workload::{WorkloadConfig, WorkloadGenerator};
use dlaas_core::{DlaasPlatform, GpuNodeSpec, PlatformConfig, Tenant};
use dlaas_faults::ChaosMonkey;
use dlaas_gpu::GpuKind;
use dlaas_kube::labels;
use dlaas_sim::{Sim, SimDuration};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2018);
    let hours: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let chaos: bool = args.next().map(|s| s == "1").unwrap_or(false);

    let mut sim = Sim::new(seed);
    sim.trace_mut().set_enabled(false);
    let cfg = PlatformConfig {
        core_nodes: 4,
        gpu_nodes: vec![GpuNodeSpec {
            kind: GpuKind::K80,
            count: 8,
            gpus_each: 4,
        }],
        ..PlatformConfig::default()
    };
    let platform = DlaasPlatform::new(&mut sim, cfg);
    platform.run_until_ready(&mut sim, SimDuration::from_secs(60));
    platform
        .add_tenant(&Tenant::new("bench", BENCH_KEY, 0))
        .expect("bootstrap tenant insert");
    platform.seed_dataset("wl-data", "d/", 1_000_000_000);
    platform.create_bucket("wl-results");

    eprintln!(
        "soaking for {hours} simulated hours (seed {seed}, chaos {})…",
        if chaos { "ON" } else { "off" }
    );
    let gen = WorkloadGenerator::start(
        &mut sim,
        platform.client("operator", BENCH_KEY),
        WorkloadConfig::default(),
    );
    let monkey = chaos.then(|| {
        ChaosMonkey::unleash(
            &mut sim,
            platform.kube(),
            labels! {},
            SimDuration::from_secs(60),
            0.4,
        )
    });

    sim.run_for(SimDuration::from_hours(hours));
    gen.stop();
    if let Some(m) = &monkey {
        m.stop();
    }
    // Drain: let everything in flight finish.
    sim.run_for(SimDuration::from_hours(4));

    let report = gen.report();
    let report = report.borrow();
    let (done, failed, other) = report.outcomes(&platform);
    let turnaround = report
        .mean_turnaround_secs(&platform)
        .map(|s| format!("{s:.0}s"))
        .unwrap_or_else(|| "n/a".into());
    let restarts: u64 = report
        .submitted
        .iter()
        .filter_map(|s| platform.job_info(&s.job))
        .map(|i| i.learner_restarts)
        .sum();
    print_table(
        "Workload soak",
        &["metric", "value"],
        &[
            vec!["jobs submitted".into(), report.submitted.len().to_string()],
            vec!["jobs rejected".into(), report.rejected.to_string()],
            vec!["completed".into(), done.to_string()],
            vec!["failed/killed".into(), failed.to_string()],
            vec!["unfinished".into(), other.to_string()],
            vec!["mean turnaround".into(), turnaround],
            vec!["learner restarts".into(), restarts.to_string()],
        ],
    );

    // Platform-side view of the same run, straight from dlaas-obs.
    let m = platform.metrics();
    let quantile = |name: &str, q: f64| {
        m.quantile(name, &[], q)
            .map(|s| format!("{s:.1}s"))
            .unwrap_or_else(|| "n/a".into())
    };
    print_table(
        "Platform metrics (dlaas-obs)",
        &["metric", "value"],
        &[
            vec![
                "api submissions".into(),
                m.counter_total(dlaas_core::metrics::API_SUBMISSIONS)
                    .to_string(),
            ],
            vec![
                "guardians created".into(),
                m.counter_total(dlaas_core::metrics::LCM_GUARDIANS_CREATED)
                    .to_string(),
            ],
            vec![
                "guardian rollbacks".into(),
                m.counter_total(dlaas_core::metrics::GUARDIAN_ROLLBACKS)
                    .to_string(),
            ],
            vec![
                "kube pod restarts".into(),
                m.counter_total("kube_pod_restarts_total").to_string(),
            ],
            vec![
                "checkpoint writes".into(),
                m.counter_total(dlaas_core::metrics::CHECKPOINT_WRITES)
                    .to_string(),
            ],
            vec![
                "checkpoint restores".into(),
                m.counter_total(dlaas_core::metrics::CHECKPOINT_RESTORES)
                    .to_string(),
            ],
            vec![
                "deploy latency p50".into(),
                quantile(dlaas_core::metrics::GUARDIAN_DEPLOY_SECONDS, 0.50),
            ],
            vec![
                "deploy latency p95".into(),
                quantile(dlaas_core::metrics::GUARDIAN_DEPLOY_SECONDS, 0.95),
            ],
            vec![
                "checkpoint stall p95".into(),
                quantile(dlaas_core::metrics::CHECKPOINT_STALL_SECONDS, 0.95),
            ],
        ],
    );
    assert_eq!(other, 0, "no job may be left in limbo after the drain");
    if !chaos {
        assert_eq!(failed, 0, "without chaos nothing should fail");
    }
    println!("\nall acknowledged jobs reached a terminal state.");
}
