//! Scale soak: N concurrent training jobs through the full platform, for
//! N across three orders of magnitude, reporting where the control-plane
//! hot paths spend their work. The three cost series come straight from
//! the `dlaas-obs` work-count histograms the hot paths emit:
//!
//! * `etcd_watch_fanout_examined` — watch registrations examined per
//!   committed etcd command (the prefix-indexed registry),
//! * `kube_kick_pending_examined` — pods examined per scheduler kick
//!   (the incrementally-maintained pending queue),
//! * `mongo_docs_examined{op="find_changed"}` — changed documents
//!   delivered per LCM sweep by the docstore change feed (watch-driven
//!   sweep: work scales with churn, not with N).
//!
//! Dividing each histogram's total by N gives a per-job cost that must
//! stay flat as N grows — the soak asserts the largest N is within 2× of
//! the smallest. Everything is measured inside the deterministic sim and
//! each N runs as one trial of the seed-parallel campaign runner, so the
//! emitted `BENCH_scale.json` is byte-identical for a given seed at any
//! `--threads` value. The process exits non-zero if any trial times out,
//! panics, or is malformed (lost submissions or unfinished jobs).
//!
//! Usage: `cargo run --release -p dlaas-bench --bin scale_soak [--threads T] [seed] [N1,N2,...] [out.json]`
//! Defaults: 1 thread, seed 2018, N ∈ {100, 1000, 10000}, `BENCH_scale.json`.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use dlaas_bench::harness::{print_table, BENCH_KEY};
use dlaas_bench::runner::{CampaignRunner, Trial, TrialRun};
use dlaas_core::{DlaasPlatform, GpuNodeSpec, JobStatus, PlatformConfig, Tenant, TrainingManifest};
use dlaas_gpu::{DlModel, Framework, GpuKind};
use dlaas_sim::{Sim, SimDuration};

/// Fixed measurement horizon. Identical for every N so periodic work
/// (LCM sweeps, guardian polls) contributes the same number of rounds
/// and the per-job costs are comparable across N.
const HORIZON: SimDuration = SimDuration::from_hours(4);

/// One work-count series, summarized from its `dlaas-obs` histogram.
struct Series {
    name: &'static str,
    count: u64,
    sum: f64,
    mean: f64,
    max: f64,
    per_job: f64,
}

struct Run {
    n: u64,
    /// Jobs the platform acknowledged; fewer than `n` means submissions
    /// were lost and the trial is malformed.
    submitted: u64,
    completed: u64,
    failed: u64,
    unfinished: u64,
    watch_events_total: u64,
    events_per_sim_sec: f64,
    series: Vec<Series>,
}

impl Run {
    /// A trial is malformed when submissions were lost or jobs are still
    /// in limbo after the horizon — aggregate assertions must not paper
    /// over either.
    fn malformed(&self) -> bool {
        self.submitted != self.n || self.unfinished > 0
    }
}

fn soak_manifest(name: &str) -> TrainingManifest {
    TrainingManifest::builder(name)
        .framework(Framework::TensorFlow)
        .model(DlModel::Resnet50)
        .gpus(GpuKind::K80, 1)
        .learners(1)
        .data("scale-data", "d/", 200_000_000)
        .results("scale-results")
        .iterations(100)
        .build()
        .unwrap()
}

fn run_one(seed: u64, n: u64) -> TrialRun<Run> {
    let mut sim = Sim::new(seed);
    sim.trace_mut().set_enabled(false);
    // Capacity scales with N (≥ N K80s) so concurrency — not parking —
    // is what grows; the soak measures control-plane cost, not queueing.
    let cfg = PlatformConfig {
        core_nodes: 4,
        gpu_nodes: vec![GpuNodeSpec {
            kind: GpuKind::K80,
            count: (n.div_ceil(4)).max(2) as u32,
            gpus_each: 4,
        }],
        ..PlatformConfig::default()
    };
    let platform = DlaasPlatform::new(&mut sim, cfg);
    platform.run_until_ready(&mut sim, SimDuration::from_secs(60));
    platform
        .add_tenant(&Tenant::new("bench", BENCH_KEY, 0))
        .expect("bootstrap tenant insert");
    platform.seed_dataset("scale-data", "d/", 200_000_000);
    platform.create_bucket("scale-results");
    let client = platform.client("scale", BENCH_KEY);

    // Spread submissions over a fixed 20-minute window regardless of N,
    // so arrival *rate* scales with N but the workload shape does not.
    let window = SimDuration::from_mins(20);
    let jobs = Rc::new(RefCell::new(Vec::with_capacity(n as usize)));
    for i in 0..n {
        let at = SimDuration::from_micros(window.as_micros() * i / n);
        let client = client.clone();
        let jobs = jobs.clone();
        sim.schedule_in(at, move |sim| {
            client.submit(sim, soak_manifest(&format!("scale-{i}")), move |_sim, r| {
                if let Ok(job) = r {
                    jobs.borrow_mut().push(job);
                }
            });
        });
    }
    sim.run_for(HORIZON);

    let (mut completed, mut failed, mut unfinished) = (0u64, 0u64, 0u64);
    for job in jobs.borrow().iter() {
        match platform.job_info(job).map(|i| i.status) {
            Some(JobStatus::Completed) => completed += 1,
            Some(JobStatus::Failed | JobStatus::Killed) => failed += 1,
            _ => unfinished += 1,
        }
    }

    let m = platform.metrics();
    let series = [
        (
            "etcd_watch_fanout_examined",
            m.histogram_merged("etcd_watch_fanout_examined"),
        ),
        (
            "kube_kick_pending_examined",
            m.histogram_merged("kube_kick_pending_examined"),
        ),
        (
            "lcm_sweep_docs_examined",
            m.histogram("mongo_docs_examined", &[("op", "find_changed")]),
        ),
    ]
    .into_iter()
    .map(|(name, h)| {
        let (count, sum, mean, max) = h
            .map(|h| {
                (
                    h.count(),
                    h.sum(),
                    h.mean().unwrap_or(0.0),
                    h.max().unwrap_or(0.0),
                )
            })
            .unwrap_or((0, 0.0, 0.0, 0.0));
        Series {
            name,
            count,
            sum,
            mean,
            max,
            per_job: sum / n as f64,
        }
    })
    .collect();

    let watch_events_total = m.counter_total("etcd_watch_events_total");
    let submitted = jobs.borrow().len() as u64;
    let run = Run {
        n,
        submitted,
        completed,
        failed,
        unfinished,
        watch_events_total,
        events_per_sim_sec: watch_events_total as f64 / HORIZON.as_secs_f64(),
        series,
    };
    TrialRun {
        result: run,
        sim_elapsed: sim
            .now()
            .saturating_duration_since(dlaas_sim::SimTime::ZERO),
    }
}

/// Hand-rolled JSON with fixed key order and fixed-precision floats, so
/// the artifact is byte-identical across same-seed runs (and across any
/// `--threads` value — it contains no thread count and no wall-clock).
fn render_json(seed: u64, runs: &[&Run]) -> String {
    let mut out = String::new();
    let mut w = |s: &str| out.push_str(s);
    w("{\n");
    w(&format!("  \"bench\": \"scale_soak\",\n  \"seed\": {seed},\n  \"horizon_secs\": {:.6},\n  \"runs\": [\n", HORIZON.as_secs_f64()));
    for (ri, r) in runs.iter().enumerate() {
        w("    {\n");
        w(&format!(
            "      \"n\": {},\n      \"completed\": {},\n      \"failed\": {},\n      \"unfinished\": {},\n      \"watch_events_total\": {},\n      \"events_per_sim_sec\": {:.6},\n",
            r.n, r.completed, r.failed, r.unfinished, r.watch_events_total, r.events_per_sim_sec
        ));
        w("      \"series\": {\n");
        for (si, s) in r.series.iter().enumerate() {
            let mut line = String::new();
            write!(
                line,
                "        \"{}\": {{\"count\": {}, \"sum\": {:.6}, \"mean\": {:.6}, \"max\": {:.6}, \"per_job\": {:.6}}}",
                s.name, s.count, s.sum, s.mean, s.max, s.per_job
            )
            .unwrap();
            w(&line);
            w(if si + 1 < r.series.len() { ",\n" } else { "\n" });
        }
        w("      }\n");
        w(if ri + 1 < runs.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    w("  ]\n}\n");
    out
}

fn main() {
    let mut threads: usize = 1;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            threads = args
                .next()
                .and_then(|s| s.parse().ok())
                .expect("--threads T");
        } else {
            positional.push(arg);
        }
    }
    let mut positional = positional.into_iter();
    let seed: u64 = positional
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2018);
    let ns: Vec<u64> = positional
        .next()
        .map(|s| s.split(',').filter_map(|p| p.parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| vec![100, 1000, 10000]);
    let out_path = positional
        .next()
        .unwrap_or_else(|| "BENCH_scale.json".into());

    eprintln!("scale soak: N in {ns:?} (seed {seed}, {threads} thread(s))…");
    let trials: Vec<Trial<u64>> = ns
        .iter()
        .map(|&n| Trial {
            label: format!("n{n}"),
            repro: format!(
                "cargo run --release -p dlaas-bench --bin scale_soak -- {seed} {n} scale-repro.json"
            ),
            spec: n,
        })
        .collect();
    // Every trial simulates boot + the fixed 4h horizon, so anything past
    // 5h of sim time is a runaway.
    let report = CampaignRunner::new("scale_soak", threads)
        .with_sim_budget(HORIZON + SimDuration::from_hours(1))
        .run(trials, |&n, _ctx| run_one(seed, n));
    let runs: Vec<&Run> = report.results().collect();

    let mut rows = Vec::new();
    for r in &runs {
        rows.push(vec![
            r.n.to_string(),
            format!("{}/{}/{}", r.completed, r.failed, r.unfinished),
            format!("{:.1}", r.events_per_sim_sec),
            format!("{:.2}", r.series[0].per_job),
            format!("{:.2}", r.series[1].per_job),
            format!("{:.2}", r.series[2].per_job),
        ]);
    }
    print_table(
        "Scale soak: per-job control-plane cost (work items / job)",
        &[
            "N",
            "done/failed/unfinished",
            "watch ev/s",
            "fanout/job",
            "kick/job",
            "sweep/job",
        ],
        &rows,
    );

    let json = render_json(seed, &runs);
    std::fs::write(&out_path, &json).expect("write BENCH_scale.json");
    println!("\nwrote {out_path}");
    // Wall-clock to stderr only — never into the byte-compared artifact.
    eprintln!("{}", report.wall_summary("scale_soak"));

    // No trial may be dropped, malformed, or out of budget: CI must not
    // go green over a lost submission even when the aggregates look fine.
    let mut dirty = false;
    let abnormal = report.failure_records();
    if !abnormal.is_empty() {
        eprintln!("\n{} abnormal trials:", abnormal.len());
        for r in &abnormal {
            eprintln!("  {r}");
        }
        dirty = true;
    }
    for r in &runs {
        if r.malformed() {
            eprintln!(
                "  MALFORMED N={}: submitted={} (expected {}), unfinished={}",
                r.n, r.submitted, r.n, r.unfinished
            );
            dirty = true;
        }
    }
    if dirty {
        std::process::exit(1);
    }

    // The flat-curve criterion: per-job cost at the largest N must stay
    // within 2× of the smallest N for every series (+1 guards emptiness).
    if let (Some(lo), Some(hi)) = (
        runs.iter().min_by_key(|r| r.n),
        runs.iter().max_by_key(|r| r.n),
    ) {
        if lo.n < hi.n {
            for (a, b) in lo.series.iter().zip(hi.series.iter()) {
                let ratio = (b.per_job + 1.0) / (a.per_job + 1.0);
                println!(
                    "{}: {:.2}/job @ N={} vs {:.2}/job @ N={} (×{:.2})",
                    a.name, a.per_job, lo.n, b.per_job, hi.n, ratio
                );
                assert!(
                    ratio <= 2.0,
                    "{}: per-job cost grew ×{ratio:.2} from N={} to N={}",
                    a.name,
                    lo.n,
                    hi.n
                );
            }
        }
    }
}
