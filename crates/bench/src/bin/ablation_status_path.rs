//! Ablation (§III-f): how much etcd replication buys the status path.
//!
//! The controller records learner statuses in a 3-way replicated etcd;
//! the Guardian aggregates them into MongoDB. This sweep crashes
//! 0, 1 or 2 etcd replicas mid-training (restarting them after a fixed
//! outage) and reports the effect on the job and on status freshness:
//!
//! * 1 replica down — a quorum remains: invisible,
//! * 2 replicas down — no quorum: status updates stall for the outage
//!   (the paper's design accepts this: consistency over availability),
//!   but nothing is lost and the job still completes after recovery.
//!
//! Usage: `cargo run -p dlaas-bench --bin ablation_status_path [seed]`

use std::cell::RefCell;
use std::rc::Rc;

use dlaas_bench::harness::{experiment_platform, print_table, BENCH_KEY};
use dlaas_core::{JobId, JobStatus, TrainingManifest};
use dlaas_gpu::{DlModel, Framework, GpuKind};
use dlaas_sim::{Sim, SimDuration};

struct Outcome {
    crashed: u32,
    completed: bool,
    wall_secs: f64,
    max_staleness_secs: f64,
}

fn run_one(seed: u64, crash_nodes: u32) -> Outcome {
    let mut sim = Sim::new(seed);
    sim.trace_mut().set_enabled(false);
    let platform = experiment_platform(&mut sim, GpuKind::K80, 1);
    let manifest = TrainingManifest::builder(format!("etcd-ablation-{crash_nodes}"))
        .framework(Framework::TensorFlow)
        .model(DlModel::Resnet50)
        .gpus(GpuKind::K80, 1)
        .data("bench-data", "d/", 2_000_000_000)
        .results("bench-results")
        .iterations(3_000)
        .build()
        .expect("valid manifest");

    let client = platform.client("bench", BENCH_KEY);
    let got: Rc<RefCell<Option<JobId>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    client.submit(&mut sim, manifest, move |_s, r| {
        *g.borrow_mut() = Some(r.expect("accepted"));
    });
    sim.run_until_pred(|_| got.borrow().is_some());
    let job = got.borrow().clone().unwrap();
    let t0 = sim.now();
    platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Processing,
        SimDuration::from_mins(30),
    );

    // Outage window: crash N replicas for 60 simulated seconds.
    for id in 0..crash_nodes {
        platform.etcd().crash(&mut sim, id);
    }
    let crashed_at = sim.now();
    let outage = SimDuration::from_secs(60);

    // Sample status freshness every 5s through the outage + recovery:
    // staleness = how long the mongo-recorded iteration has been stuck.
    let mut max_staleness = 0.0_f64;
    let mut last_iter = 0u64;
    let mut last_change = sim.now();
    let sample_until = sim.now() + outage + SimDuration::from_secs(120);
    while sim.now() < sample_until {
        sim.run_for(SimDuration::from_secs(5));
        if sim.now() >= crashed_at + outage {
            for id in 0..crash_nodes {
                // Restart is idempotent; only restarts crashed nodes once.
                if !platform.etcd().raft().node(id).is_alive() {
                    platform.etcd().restart(&mut sim, id);
                }
            }
        }
        let iter = platform.job_info(&job).map(|i| i.iteration).unwrap_or(0);
        if iter != last_iter {
            last_iter = iter;
            last_change = sim.now();
        } else {
            max_staleness = max_staleness.max(
                sim.now()
                    .saturating_duration_since(last_change)
                    .as_secs_f64(),
            );
        }
    }

    let end = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Completed,
        SimDuration::from_hours(12),
    );
    Outcome {
        crashed: crash_nodes,
        completed: end == Some(JobStatus::Completed),
        wall_secs: (sim.now() - t0).as_secs_f64(),
        max_staleness_secs: max_staleness,
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2018);
    eprintln!("crashing 0/1/2 etcd replicas for 60s mid-training (seed {seed})…");
    let rows: Vec<Vec<String>> = [0u32, 1, 2]
        .iter()
        .map(|n| {
            let o = run_one(seed, *n);
            vec![
                format!("{}/3", o.crashed),
                if o.completed { "COMPLETED" } else { "DNF" }.to_owned(),
                format!("{:.0}s", o.max_staleness_secs),
                format!("{:.0}s", o.wall_secs),
            ]
        })
        .collect();
    print_table(
        "Ablation — etcd replicas crashed (60s outage) vs status-path behaviour",
        &[
            "replicas down",
            "job outcome",
            "max status staleness",
            "total time",
        ],
        &rows,
    );
    println!("\nlosing a minority is invisible; losing quorum only *stalls* status\nupdates for the outage — nothing is lost, and the job still completes.");
}
