//! Figure 2: performance overhead of DLaaS vs IBM Cloud bare-metal
//! servers, on K80 GPUs over 1 GbE with data in the object store.
//!
//! Paper rows (difference in images/sec, %):
//!
//! | Benchmark   | Framework  | GPUs | Paper |
//! |-------------|------------|------|-------|
//! | VGG-16      | Caffe      | 1    | 3.29  |
//! | VGG-16      | Caffe      | 2    | 0.34  |
//! | VGG-16      | Caffe      | 3    | 5.88  |
//! | VGG-16      | Caffe      | 4    | 5.2   |
//! | InceptionV3 | TensorFlow | 1    | 0.32  |
//! | InceptionV3 | TensorFlow | 2    | 4.86  |
//! | InceptionV3 | TensorFlow | 3    | 5.15  |
//! | InceptionV3 | TensorFlow | 4    | 1.54  |
//!
//! The paper's claim is the *shape*: overhead is small (≲6%) and
//! unsystematic — it is dominated by containerization, helper
//! interference and run-to-run noise, not by anything that scales with
//! the job. That is what this experiment must reproduce.

use dlaas_gpu::{DlModel, ExecEnv, Framework, GpuKind};
use dlaas_sim::SimDuration;

use crate::harness::{
    bare_metal_images_per_sec, measure_dlaas_throughput, pct_diff, throughput_manifest,
};
use crate::runner::{CampaignReport, CampaignRunner, Trial, TrialRun};

/// One cell of the Fig. 2 table.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Cell {
    /// The benchmark network.
    pub model: DlModel,
    /// The framework.
    pub framework: Framework,
    /// PCIe K80 GPUs used.
    pub gpus: u32,
    /// The paper's reported overhead (%).
    pub paper_pct: f64,
}

/// The eight cells of the paper's table.
pub fn cells() -> Vec<Fig2Cell> {
    let v = |gpus, paper_pct| Fig2Cell {
        model: DlModel::Vgg16,
        framework: Framework::Caffe,
        gpus,
        paper_pct,
    };
    let i = |gpus, paper_pct| Fig2Cell {
        model: DlModel::InceptionV3,
        framework: Framework::TensorFlow,
        gpus,
        paper_pct,
    };
    vec![
        v(1, 3.29),
        v(2, 0.34),
        v(3, 5.88),
        v(4, 5.2),
        i(1, 0.32),
        i(2, 4.86),
        i(3, 5.15),
        i(4, 1.54),
    ]
}

/// Result of reproducing one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Result {
    /// The cell.
    pub cell: Fig2Cell,
    /// Bare-metal throughput (images/sec).
    pub bare_metal: f64,
    /// DLaaS throughput through the full stack (images/sec).
    pub dlaas: f64,
    /// Measured overhead (%).
    pub measured_pct: f64,
}

/// Runs one cell: the DLaaS arm goes through the full platform; the
/// bare-metal arm is an independent run on the same hardware model,
/// streaming its data from the object store exactly as the paper's
/// baseline did.
pub fn run_cell(seed: u64, cell: &Fig2Cell, iterations: u64) -> Fig2Result {
    run_cell_timed(seed, cell, iterations).result
}

/// Like [`run_cell`], also reporting the simulated time the DLaaS arm
/// consumed (what the campaign runner's sim-time budget is checked
/// against).
pub fn run_cell_timed(seed: u64, cell: &Fig2Cell, iterations: u64) -> TrialRun<Fig2Result> {
    let manifest = throughput_manifest(
        cell.model,
        cell.framework,
        GpuKind::K80,
        cell.gpus,
        iterations,
    );
    let run = measure_dlaas_throughput(seed, manifest);
    let dlaas = run
        .images_per_sec
        .expect("fig2 job must complete and report throughput");
    let bare_metal = bare_metal_images_per_sec(
        seed,
        cell.model,
        cell.framework,
        GpuKind::K80,
        cell.gpus,
        ExecEnv::bare_metal_streaming(0.117e9),
        0.015,
    );
    TrialRun {
        result: Fig2Result {
            cell: cell.clone(),
            bare_metal,
            dlaas,
            measured_pct: pct_diff(bare_metal, dlaas),
        },
        sim_elapsed: SimDuration::from_secs_f64(run.wall_secs),
    }
}

/// Runs the whole table.
pub fn run_all(seed: u64, iterations: u64) -> Vec<Fig2Result> {
    cells()
        .iter()
        .map(|c| run_cell(seed, c, iterations))
        .collect()
}

/// Runs `trials` independent repetitions of the whole table (trial `t`
/// uses seed `seed + t`) on `threads` workers, one runner trial per
/// (repetition, cell). The canonical trial enumeration is
/// repetition-major, so record `t * cells + c` is repetition `t` of
/// cell `c` — byte-identical at any thread count.
pub fn run_parallel(
    seed: u64,
    iterations: u64,
    trials: u64,
    threads: usize,
) -> CampaignReport<Fig2Result> {
    let mut specs = Vec::new();
    for t in 0..trials {
        for cell in cells() {
            specs.push(Trial {
                label: format!("t{t}/{}-{}-x{}", cell.model, cell.framework, cell.gpus),
                repro: format!(
                    "cargo run --release -p dlaas-bench --bin fig2 -- {} {iterations} 1",
                    seed + t
                ),
                spec: (seed + t, cell),
            });
        }
    }
    CampaignRunner::new("fig2", threads).run(specs, |(trial_seed, cell), _ctx| {
        run_cell_timed(*trial_seed, cell, iterations)
    })
}

/// Regroups a clean campaign's records repetition-major: `out[t][c]` is
/// repetition `t` of cell `c`. `None` when any trial was abnormal
/// (timeout/panic) — callers must report the failure records instead.
pub fn by_repetition(
    report: &CampaignReport<Fig2Result>,
    trials: u64,
) -> Option<Vec<Vec<Fig2Result>>> {
    if !report.abnormal().is_empty() {
        return None;
    }
    let per = cells().len();
    let all: Vec<Fig2Result> = report.results().cloned().collect();
    if all.len() != per * trials as usize {
        return None;
    }
    Some(all.chunks(per).map(<[Fig2Result]>::to_vec).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_small_for_every_cell() {
        // The headline claim of Fig. 2: platform overhead is minimal.
        for cell in cells().iter().take(2) {
            let r = run_cell(42, cell, 200);
            assert!(
                r.measured_pct < 8.0,
                "{:?}: overhead {:.2}% is not 'minimal'",
                cell,
                r.measured_pct
            );
            assert!(
                r.measured_pct > -3.0,
                "{cell:?}: DLaaS can't meaningfully beat bare metal"
            );
        }
    }
}
