//! Figure 2: performance overhead of DLaaS vs IBM Cloud bare-metal
//! servers, on K80 GPUs over 1 GbE with data in the object store.
//!
//! Paper rows (difference in images/sec, %):
//!
//! | Benchmark   | Framework  | GPUs | Paper |
//! |-------------|------------|------|-------|
//! | VGG-16      | Caffe      | 1    | 3.29  |
//! | VGG-16      | Caffe      | 2    | 0.34  |
//! | VGG-16      | Caffe      | 3    | 5.88  |
//! | VGG-16      | Caffe      | 4    | 5.2   |
//! | InceptionV3 | TensorFlow | 1    | 0.32  |
//! | InceptionV3 | TensorFlow | 2    | 4.86  |
//! | InceptionV3 | TensorFlow | 3    | 5.15  |
//! | InceptionV3 | TensorFlow | 4    | 1.54  |
//!
//! The paper's claim is the *shape*: overhead is small (≲6%) and
//! unsystematic — it is dominated by containerization, helper
//! interference and run-to-run noise, not by anything that scales with
//! the job. That is what this experiment must reproduce.

use dlaas_gpu::{DlModel, ExecEnv, Framework, GpuKind};

use crate::harness::{
    bare_metal_images_per_sec, measure_dlaas_throughput, pct_diff, throughput_manifest,
};

/// One cell of the Fig. 2 table.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Cell {
    /// The benchmark network.
    pub model: DlModel,
    /// The framework.
    pub framework: Framework,
    /// PCIe K80 GPUs used.
    pub gpus: u32,
    /// The paper's reported overhead (%).
    pub paper_pct: f64,
}

/// The eight cells of the paper's table.
pub fn cells() -> Vec<Fig2Cell> {
    let v = |gpus, paper_pct| Fig2Cell {
        model: DlModel::Vgg16,
        framework: Framework::Caffe,
        gpus,
        paper_pct,
    };
    let i = |gpus, paper_pct| Fig2Cell {
        model: DlModel::InceptionV3,
        framework: Framework::TensorFlow,
        gpus,
        paper_pct,
    };
    vec![
        v(1, 3.29),
        v(2, 0.34),
        v(3, 5.88),
        v(4, 5.2),
        i(1, 0.32),
        i(2, 4.86),
        i(3, 5.15),
        i(4, 1.54),
    ]
}

/// Result of reproducing one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Result {
    /// The cell.
    pub cell: Fig2Cell,
    /// Bare-metal throughput (images/sec).
    pub bare_metal: f64,
    /// DLaaS throughput through the full stack (images/sec).
    pub dlaas: f64,
    /// Measured overhead (%).
    pub measured_pct: f64,
}

/// Runs one cell: the DLaaS arm goes through the full platform; the
/// bare-metal arm is an independent run on the same hardware model,
/// streaming its data from the object store exactly as the paper's
/// baseline did.
pub fn run_cell(seed: u64, cell: &Fig2Cell, iterations: u64) -> Fig2Result {
    let manifest = throughput_manifest(
        cell.model,
        cell.framework,
        GpuKind::K80,
        cell.gpus,
        iterations,
    );
    let run = measure_dlaas_throughput(seed, manifest);
    let dlaas = run
        .images_per_sec
        .expect("fig2 job must complete and report throughput");
    let bare_metal = bare_metal_images_per_sec(
        seed,
        cell.model,
        cell.framework,
        GpuKind::K80,
        cell.gpus,
        ExecEnv::bare_metal_streaming(0.117e9),
        0.015,
    );
    Fig2Result {
        cell: cell.clone(),
        bare_metal,
        dlaas,
        measured_pct: pct_diff(bare_metal, dlaas),
    }
}

/// Runs the whole table.
pub fn run_all(seed: u64, iterations: u64) -> Vec<Fig2Result> {
    cells()
        .iter()
        .map(|c| run_cell(seed, c, iterations))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_small_for_every_cell() {
        // The headline claim of Fig. 2: platform overhead is minimal.
        for cell in cells().iter().take(2) {
            let r = run_cell(42, cell, 200);
            assert!(
                r.measured_pct < 8.0,
                "{:?}: overhead {:.2}% is not 'minimal'",
                cell,
                r.measured_pct
            );
            assert!(
                r.measured_pct > -3.0,
                "{cell:?}: DLaaS can't meaningfully beat bare metal"
            );
        }
    }
}
