//! NSML-style multi-tenant traffic: the workload shape reported for
//! production DL clusters (NSML, Philly, the paper's own DLaaS):
//!
//! * **Diurnal arrivals** — a non-homogeneous Poisson process whose
//!   intensity follows a sinusoid over the submission window, sampled by
//!   inverse-CDF so a run is deterministic for a given seed;
//! * **Pareto bursts** — an arrival occasionally opens a burst of
//!   same-tenant submissions with a heavy-tailed size, the flash crowds
//!   that drive tenants over quota and into the fair queue;
//! * **Heavy-tailed durations** — log-normal job lengths (most jobs are
//!   minutes, a few run for hours), mapped to training iterations
//!   through the GPU performance model;
//! * **Whale / small tenant mix** — a couple of heavyweight tenants
//!   carry half the traffic at a higher fair-share weight, the rest is
//!   spread over many small tenants.
//!
//! [`generate`] precomputes the full arrival schedule up front (pure
//! math over a forked [`SimRng`], no event-loop interleaving), so the
//! schedule is byte-identical regardless of how the driving campaign is
//! threaded. [`check_against_baseline`] is the CI gate over the
//! artifacts the `traffic_soak` bin emits: wall-clock throughput within
//! a relative tolerance, and the (deterministic) per-tenant p99
//! turnaround within the same tolerance.

use std::fmt::Write as _;

use dlaas_docstore::Value;
use dlaas_gpu::{step_time_secs, DlModel, ExecEnv, Framework, GpuKind, TrainingConfig};
use dlaas_sim::{SimDuration, SimRng};

/// Shape of the generated traffic. Defaults follow the NSML/Philly
/// findings scaled into a two-hour window: ~50% of jobs from 2 whale
/// tenants, sinusoidal intensity with a 60% swing, ~3% of arrivals
/// opening a Pareto burst, log-normal durations with a 90s median and a
/// fat tail.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Heavyweight tenants (higher fair-share weight, half the traffic).
    pub whales: u32,
    /// Small tenants sharing the other half of the traffic.
    pub smalls: u32,
    /// Fair-share weight of each whale (smalls weigh 1).
    pub whale_weight: u32,
    /// Fraction of arrivals drawn by whale tenants.
    pub whale_share: f64,
    /// Submission window; arrivals all land inside it.
    pub window: SimDuration,
    /// Amplitude of the diurnal sinusoid in [0, 1).
    pub diurnal_amp: f64,
    /// Probability an arrival opens a burst.
    pub burst_p: f64,
    /// Pareto shape of the burst size (smaller = heavier tail).
    pub burst_alpha: f64,
    /// Burst size cap.
    pub burst_max: u64,
    /// Mean spacing of submissions inside one burst.
    pub burst_spread: SimDuration,
    /// Median job duration (log-normal location).
    pub median_duration: SimDuration,
    /// Log-normal shape; 1.0 gives the observed minutes-to-hours spread.
    pub duration_sigma: f64,
    /// Duration cap, so the tail cannot outlive the drain horizon.
    pub max_duration: SimDuration,
    /// Probability a *whale* job is distributed over 2–4 learners
    /// (small tenants run single-GPU jobs, matching the production
    /// observation that distributed training concentrates in the
    /// heavyweight tenants — and keeping every job admissible within
    /// its tenant's quota slice).
    pub multi_learner_p: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            whales: 2,
            smalls: 10,
            whale_weight: 4,
            whale_share: 0.5,
            window: SimDuration::from_hours(2),
            diurnal_amp: 0.6,
            burst_p: 0.03,
            burst_alpha: 1.5,
            burst_max: 64,
            burst_spread: SimDuration::from_secs(5),
            median_duration: SimDuration::from_secs(90),
            duration_sigma: 1.0,
            max_duration: SimDuration::from_mins(30),
            multi_learner_p: 0.15,
        }
    }
}

impl TrafficConfig {
    /// Tenant ids, whales first — index into this is the tenant handle
    /// the generated [`Arrival`]s carry.
    pub fn tenant_ids(&self) -> Vec<String> {
        let mut out = Vec::with_capacity((self.whales + self.smalls) as usize);
        for i in 0..self.whales {
            out.push(format!("whale-{i}"));
        }
        for i in 0..self.smalls {
            out.push(format!("small-{i}"));
        }
        out
    }

    /// Fair-share weight of tenant `idx` (whales first).
    pub fn weight_of(&self, idx: usize) -> u32 {
        if (idx as u32) < self.whales {
            self.whale_weight
        } else {
            1
        }
    }

    /// GPU capacity to provision for `n` jobs: expected peak concurrency
    /// (offered load × diurnal peak) plus headroom so admitted jobs
    /// deploy promptly — the fair queue, not the scheduler, is where
    /// over-quota work waits.
    pub fn capacity_gpus(&self, n: u64) -> u32 {
        let mean_secs =
            self.median_duration.as_secs_f64() * (self.duration_sigma.powi(2) / 2.0).exp();
        // E[gpus] ≈ 1 + P(whale)·P(distributed)·E[extra learners].
        let mean_gpus = 1.0 + self.whale_share * self.multi_learner_p * 2.0;
        let offered = n as f64 * mean_secs * mean_gpus / self.window.as_secs_f64();
        ((offered * (1.0 + self.diurnal_amp) * 1.3).ceil() as u32).max(8)
    }

    /// Per-tenant GPU quota: capacity split so whales get
    /// `whale_weight` shares and smalls one share each, the whole
    /// cluster allocated. Bursts then push tenants over their slice and
    /// into the fair queue while total admitted work still fits.
    pub fn quota_of(&self, idx: usize, capacity: u32) -> u32 {
        let shares = u64::from(self.whales) * u64::from(self.whale_weight) + u64::from(self.smalls);
        let q = u64::from(capacity) * u64::from(self.weight_of(idx)) / shares.max(1);
        // Floors keep every generated job admissible: whales can draw
        // 4-GPU distributed jobs, smalls stay single-GPU.
        let floor = if (idx as u32) < self.whales { 4 } else { 2 };
        (q as u32).max(floor)
    }
}

/// One precomputed submission.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Offset from the start of the submission window.
    pub at: SimDuration,
    /// Index into [`TrafficConfig::tenant_ids`].
    pub tenant: usize,
    /// Training iterations (duration mapped through the GPU model).
    pub iterations: u64,
    /// Learner processes (1 = single-GPU job).
    pub learners: u32,
}

/// Normalized cumulative intensity of the diurnal process at `x` in
/// [0, 1]: Λ(x) for λ(x) ∝ 1 + amp·sin(2πx), scaled so Λ(1) = 1.
fn diurnal_cum(amp: f64, x: f64) -> f64 {
    use std::f64::consts::PI;
    x + amp / (2.0 * PI) * (1.0 - (2.0 * PI * x).cos())
}

/// Inverse of [`diurnal_cum`] by bisection (the CDF is strictly
/// increasing for amp < 1).
fn diurnal_inv(amp: f64, u: f64) -> f64 {
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..48 {
        let mid = (lo + hi) / 2.0;
        if diurnal_cum(amp, mid) < u {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

/// Standard normal via Box–Muller; consumes two uniforms.
fn standard_normal(rng: &mut SimRng) -> f64 {
    use std::f64::consts::PI;
    let u1 = (1.0 - rng.unit()).max(f64::MIN_POSITIVE);
    let u2 = rng.unit();
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

/// Pareto-distributed burst size ≥ 2 with shape `alpha`.
fn pareto_size(rng: &mut SimRng, alpha: f64, cap: u64) -> u64 {
    let u = (1.0 - rng.unit()).max(f64::MIN_POSITIVE);
    let size = (2.0 * u.powf(-1.0 / alpha)) as u64;
    size.clamp(2, cap.max(2))
}

/// Generates exactly `n` arrivals, sorted by submission time. Pure math
/// over the passed rng — no simulation state is touched, so the
/// schedule is identical however the caller threads its trials.
pub fn generate(rng: &mut SimRng, cfg: &TrafficConfig, n: u64) -> Vec<Arrival> {
    // Seconds of training per iteration for the job mix's fixed model;
    // the platform adds its own overheads on top, which is fine — the
    // log-normal is a statistical target, not a promise per job.
    let step = step_time_secs(
        &TrainingConfig::new(DlModel::Resnet50, Framework::TensorFlow, GpuKind::K80, 1),
        &ExecEnv::bare_metal(),
    );
    let window = cfg.window.as_secs_f64();
    let mut out: Vec<Arrival> = Vec::with_capacity(n as usize);
    while (out.len() as u64) < n {
        let t = diurnal_inv(cfg.diurnal_amp, rng.unit()) * window;
        let tenant = if rng.chance(cfg.whale_share) && cfg.whales > 0 {
            rng.range_u64(0, u64::from(cfg.whales)) as usize
        } else {
            (u64::from(cfg.whales) + rng.range_u64(0, u64::from(cfg.smalls.max(1)))) as usize
        };
        let burst = if rng.chance(cfg.burst_p) {
            pareto_size(rng, cfg.burst_alpha, cfg.burst_max)
        } else {
            1
        };
        let mut at = t;
        for b in 0..burst {
            if out.len() as u64 >= n {
                break;
            }
            if b > 0 {
                at += rng.exponential(cfg.burst_spread).as_secs_f64();
            }
            let z = standard_normal(rng);
            let dur = (cfg.median_duration.as_secs_f64() * (cfg.duration_sigma * z).exp())
                .clamp(10.0, cfg.max_duration.as_secs_f64());
            let learners = if (tenant as u32) < cfg.whales && rng.chance(cfg.multi_learner_p) {
                rng.range_u64(2, 5) as u32
            } else {
                1
            };
            out.push(Arrival {
                at: SimDuration::from_micros((at.min(window) * 1e6) as u64),
                tenant,
                iterations: ((dur / step) as u64).max(5),
                learners,
            });
        }
    }
    out.sort_by_key(|a| a.at); // stable: bursts keep their relative order
    out
}

/// Per-tenant turnaround summary for the byte-stable artifact.
#[derive(Debug, Clone)]
pub struct TenantSummary {
    /// Tenant id.
    pub tenant: String,
    /// Jobs with an observed turnaround (reached a terminal status).
    pub jobs: u64,
    /// Turnaround quantiles in simulated seconds.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Compares the fresh traffic artifacts against a committed baseline.
///
/// The baseline carries two kinds of entries:
///
/// * `workloads` — `events_per_wall_sec` per run, from the wall sidecar
///   (`BENCH_traffic.wall.json`); the current rate must not fall more
///   than `tolerance` below the baseline (machine-speed gate);
/// * `tenant_p99` — per-tenant p99 turnaround per run, from the
///   byte-stable `BENCH_traffic.json`; deterministic for a given seed,
///   so a drift past `tolerance` means platform behavior changed
///   (fairness gate).
///
/// Returns report lines on success or the violations on failure; either
/// side failing to parse is a violation, not a pass.
pub fn check_against_baseline(
    wall_json: &str,
    traffic_json: &str,
    baseline_json: &str,
    tolerance: f64,
) -> Result<Vec<String>, Vec<String>> {
    let mut report = Vec::new();
    let mut violations = Vec::new();

    let base = match Value::parse_json(baseline_json) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("baseline: unparseable JSON: {e:?}")]),
    };

    // Machine-speed gate, same contract as the engine bench.
    if base.path("workloads").is_some() {
        match crate::engine::check_against_baseline(wall_json, baseline_json, tolerance) {
            Ok(lines) => report.extend(lines),
            Err(v) => violations.extend(v),
        }
    }

    // Fairness gate: per-tenant p99 per run, keyed "run/tenant".
    if let Some(entries) = base.path("tenant_p99").and_then(Value::as_arr) {
        let cur = match Value::parse_json(traffic_json) {
            Ok(v) => v,
            Err(e) => return Err(vec![format!("current: unparseable JSON: {e:?}")]),
        };
        for e in entries {
            let (Some(run), Some(tenant), Some(base_p99)) = (
                e.path("run").and_then(Value::as_str),
                e.path("tenant").and_then(Value::as_str),
                e.path("p99").and_then(Value::as_f64),
            ) else {
                violations.push(format!("baseline: malformed tenant_p99 entry: {e:?}"));
                continue;
            };
            let cur_p99 = cur
                .path("runs")
                .and_then(Value::as_arr)
                .and_then(|runs| {
                    runs.iter()
                        .find(|r| r.path("run").and_then(Value::as_str) == Some(run))
                })
                .and_then(|r| r.path("tenants"))
                .and_then(Value::as_arr)
                .and_then(|ts| {
                    ts.iter()
                        .find(|t| t.path("tenant").and_then(Value::as_str) == Some(tenant))
                })
                .and_then(|t| t.path("p99"))
                .and_then(Value::as_f64);
            let Some(cur_p99) = cur_p99 else {
                violations.push(format!("{run}/{tenant}: missing from current run"));
                continue;
            };
            let ceiling = base_p99 * (1.0 + tolerance);
            let line = format!(
                "{run}/{tenant}: p99 {cur_p99:.1}s vs baseline {base_p99:.1}s (ceiling {ceiling:.1}s)"
            );
            if cur_p99 > ceiling {
                violations.push(format!("REGRESSION {line}"));
            } else {
                report.push(format!("ok {line}"));
            }
        }
    }

    if report.is_empty() && violations.is_empty() {
        return Err(vec!["baseline: nothing to compare".into()]);
    }
    if violations.is_empty() {
        Ok(report)
    } else {
        Err(violations)
    }
}

/// Renders the committed baseline from a fresh pair of artifacts:
/// `(run name, events_per_wall_sec)` plus per-run tenant summaries.
pub fn render_baseline(
    wall_rates: &[(String, f64)],
    tenant_p99s: &[(String, String, f64)],
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"traffic_soak-baseline\",\n  \"workloads\": [\n");
    for (i, (name, rate)) in wall_rates.iter().enumerate() {
        write!(
            out,
            "    {{\"name\": \"{name}\", \"events_per_wall_sec\": {rate:.1}}}"
        )
        .unwrap();
        out.push_str(if i + 1 < wall_rates.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"tenant_p99\": [\n");
    for (i, (run, tenant, p99)) in tenant_p99s.iter().enumerate() {
        write!(
            out,
            "    {{\"run\": \"{run}\", \"tenant\": \"{tenant}\", \"p99\": {p99:.6}}}"
        )
        .unwrap();
        out.push_str(if i + 1 < tenant_p99s.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> SimRng {
        SimRng::new(seed)
    }

    #[test]
    fn generates_exactly_n_sorted_arrivals() {
        let cfg = TrafficConfig::default();
        let arrivals = generate(&mut rng(7), &cfg, 5_000);
        assert_eq!(arrivals.len(), 5_000);
        for w in arrivals.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for a in &arrivals {
            assert!(a.at <= cfg.window);
            assert!(a.iterations >= 5);
            assert!((1..=4).contains(&a.learners));
            assert!(a.tenant < (cfg.whales + cfg.smalls) as usize);
            // Distributed jobs are whale-only so every job fits its
            // tenant's quota slice.
            if a.learners > 1 {
                assert!((a.tenant as u32) < cfg.whales);
            }
        }
        assert!(
            arrivals.iter().any(|a| a.learners > 1),
            "whales must draw some distributed jobs"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TrafficConfig::default();
        let a = generate(&mut rng(11), &cfg, 2_000);
        let b = generate(&mut rng(11), &cfg, 2_000);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.iterations, y.iterations);
            assert_eq!(x.learners, y.learners);
        }
    }

    #[test]
    fn whales_carry_about_half_the_traffic() {
        let cfg = TrafficConfig::default();
        let arrivals = generate(&mut rng(13), &cfg, 20_000);
        let whale_jobs = arrivals
            .iter()
            .filter(|a| (a.tenant as u32) < cfg.whales)
            .count() as f64;
        let share = whale_jobs / arrivals.len() as f64;
        assert!(
            (0.40..=0.60).contains(&share),
            "whale share {share:.2} far from configured 0.5"
        );
    }

    #[test]
    fn arrivals_follow_the_diurnal_swing() {
        let cfg = TrafficConfig::default();
        let arrivals = generate(&mut rng(17), &cfg, 50_000);
        // λ ∝ 1 + 0.6·sin(2πx): the first half-window (sin > 0) must
        // hold visibly more arrivals than the second.
        let half = cfg.window.as_micros() / 2;
        let first = arrivals.iter().filter(|a| a.at.as_micros() < half).count() as f64;
        let ratio = first / arrivals.len() as f64;
        assert!(
            ratio > 0.55,
            "expected diurnal skew toward the first half, got {ratio:.2}"
        );
    }

    #[test]
    fn bursts_cluster_same_tenant_submissions() {
        let cfg = TrafficConfig {
            burst_p: 1.0, // every arrival opens a burst
            ..TrafficConfig::default()
        };
        let arrivals = generate(&mut rng(19), &cfg, 1_000);
        // With bursts of ≥2 everywhere, adjacent same-tenant pairs must
        // be common even after the global sort.
        let same_tenant_adjacent = arrivals
            .windows(2)
            .filter(|w| w[0].tenant == w[1].tenant)
            .count() as f64;
        assert!(same_tenant_adjacent / arrivals.len() as f64 > 0.3);
    }

    #[test]
    fn durations_are_heavy_tailed() {
        let cfg = TrafficConfig::default();
        let arrivals = generate(&mut rng(23), &cfg, 20_000);
        let mut iters: Vec<u64> = arrivals.iter().map(|a| a.iterations).collect();
        iters.sort_unstable();
        let med = iters[iters.len() / 2] as f64;
        let p99 = iters[iters.len() * 99 / 100] as f64;
        assert!(
            p99 / med > 5.0,
            "log-normal tail too thin: median {med}, p99 {p99}"
        );
    }

    #[test]
    fn capacity_and_quota_sizing() {
        let cfg = TrafficConfig::default();
        let cap = cfg.capacity_gpus(10_000);
        assert!(cap >= 8);
        let total: u64 = (0..(cfg.whales + cfg.smalls) as usize)
            .map(|i| u64::from(cfg.quota_of(i, cap)))
            .sum();
        // Quotas allocate the cluster without oversubscribing it badly
        // (the .max(2) floor can push tiny clusters slightly over).
        assert!(total <= u64::from(cap) + u64::from(cfg.whales + cfg.smalls) * 2);
        // Whales get the bigger slice.
        assert!(cfg.quota_of(0, cap) > cfg.quota_of((cfg.whales + cfg.smalls - 1) as usize, cap));
    }

    #[test]
    fn baseline_check_gates_wall_rate_and_p99() {
        let baseline = render_baseline(
            &[("n1000".into(), 1000.0)],
            &[("n1000".into(), "whale-0".into(), 120.0)],
        );
        let wall = "{\"workloads\": [{\"name\": \"n1000\", \"events_per_wall_sec\": 950.0}]}";
        let traffic = "{\"runs\": [{\"run\": \"n1000\", \"tenants\": [{\"tenant\": \"whale-0\", \"p99\": 125.0}]}]}";
        check_against_baseline(wall, traffic, &baseline, 0.10).expect("within tolerance");

        let slow = "{\"workloads\": [{\"name\": \"n1000\", \"events_per_wall_sec\": 500.0}]}";
        let v = check_against_baseline(slow, traffic, &baseline, 0.10).expect_err("regressed");
        assert!(v.iter().any(|l| l.contains("REGRESSION")));

        let starved = "{\"runs\": [{\"run\": \"n1000\", \"tenants\": [{\"tenant\": \"whale-0\", \"p99\": 200.0}]}]}";
        let v = check_against_baseline(wall, starved, &baseline, 0.10).expect_err("p99 regressed");
        assert!(v.iter().any(|l| l.contains("REGRESSION")));

        let missing = "{\"runs\": []}";
        assert!(check_against_baseline(wall, missing, &baseline, 0.10).is_err());
    }
}
