//! Figure 4: time to recover from crash failures, by component.
//!
//! Paper rows:
//!
//! | Component | Paper   |
//! |-----------|---------|
//! | API       | 3–5 s   |
//! | LCM       | 4–6 s   |
//! | Guardian  | 1–2 s   |
//! | Helper    | 3–4 s   |
//! | Learner   | 10–20 s |
//!
//! Method, as in the paper: with a training job live on the platform,
//! crash each component with the scripted equivalent of
//! `kubectl delete pod` and measure the time until it is back. The shape
//! to reproduce: the Guardian (tiny Go binary, no volumes) is fastest;
//! the core services take a few seconds; the learner is much slower
//! because it "binds to cloud object store and persistent NFS volumes"
//! and restarts a heavyweight framework container.

use std::cell::RefCell;
use std::rc::Rc;

use dlaas_core::{paths, DlaasPlatform, JobId, JobStatus, TrainingManifest};
use dlaas_faults::{measure_recovery, RecoveryStats};
use dlaas_gpu::{DlModel, Framework, GpuKind};
use dlaas_sim::{Sim, SimDuration, SimTime};

use crate::harness::{experiment_platform, BENCH_KEY};
use crate::runner::{CampaignRunner, Trial, TrialRun};

/// The components of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// An API service replica.
    Api,
    /// The Lifecycle Manager.
    Lcm,
    /// A job's Guardian.
    Guardian,
    /// A job's helper pod.
    Helper,
    /// A learner.
    Learner,
}

impl Component {
    /// All components, in the paper's row order.
    pub fn all() -> [Component; 5] {
        [
            Component::Api,
            Component::Lcm,
            Component::Guardian,
            Component::Helper,
            Component::Learner,
        ]
    }

    /// The paper's reported recovery range.
    pub fn paper_range(&self) -> &'static str {
        match self {
            Component::Api => "3-5s",
            Component::Lcm => "4-6s",
            Component::Guardian => "1-2s",
            Component::Helper => "3-4s",
            Component::Learner => "10-20s",
        }
    }

    fn pod_name(&self, job: &JobId) -> String {
        match self {
            Component::Api => "dlaas-api-0".to_owned(),
            Component::Lcm => "dlaas-lcm-0".to_owned(),
            Component::Guardian => paths::guardian_job(job),
            Component::Helper => paths::helper_pod(job),
            Component::Learner => paths::learner_pod(job, 0),
        }
    }

    /// Whether recovery means "serving traffic" (readiness) or just
    /// "container running" (per-job pods have no service in front).
    fn needs_readiness(&self) -> bool {
        matches!(self, Component::Api | Component::Lcm)
    }

    /// Metric label value for this component.
    pub fn label(&self) -> &'static str {
        match self {
            Component::Api => "api",
            Component::Lcm => "lcm",
            Component::Guardian => "guardian",
            Component::Helper => "helper",
            Component::Learner => "learner",
        }
    }
}

/// Histogram of measured recovery times, labelled by component.
pub const RECOVERY_SECONDS: &str = "bench_recovery_seconds";

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Component::Api => "API",
            Component::Lcm => "LCM",
            Component::Guardian => "Guardian",
            Component::Helper => "Helper",
            Component::Learner => "Learner",
        };
        f.write_str(s)
    }
}

/// Result for one component.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// The component.
    pub component: Component,
    /// Measured recovery times across trials.
    pub stats: RecoveryStats,
}

/// A live experiment: platform + one long-running job to host the per-job
/// components.
pub struct Fig4Rig {
    /// The simulation.
    pub sim: Sim,
    /// The platform.
    pub platform: DlaasPlatform,
    /// The long-running job.
    pub job: JobId,
}

/// Boots the platform and parks a long training job in PROCESSING.
pub fn rig(seed: u64) -> Fig4Rig {
    let mut sim = Sim::new(seed);
    sim.trace_mut().set_enabled(false);
    let platform = experiment_platform(&mut sim, GpuKind::K80, 4);
    let manifest = TrainingManifest::builder("fig4-host")
        .framework(Framework::TensorFlow)
        .model(DlModel::Resnet50)
        .gpus(GpuKind::K80, 1)
        .learners(1)
        .data("bench-data", "d/", 2_000_000_000)
        .results("bench-results")
        .iterations(100_000_000)
        .checkpoint_every(10_000)
        .build()
        .expect("valid manifest");
    let client = platform.client("bench", BENCH_KEY);
    let got: Rc<RefCell<Option<JobId>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    client.submit(&mut sim, manifest, move |_s, r| {
        *g.borrow_mut() = Some(r.expect("submission accepted"));
    });
    sim.run_until_pred(|_| got.borrow().is_some());
    let job = got.borrow().clone().expect("submitted");
    let s = platform.wait_for_status(
        &mut sim,
        &job,
        JobStatus::Processing,
        SimDuration::from_mins(30),
    );
    assert_eq!(s, Some(JobStatus::Processing), "host job must be training");
    Fig4Rig { sim, platform, job }
}

/// One recovery measurement: `kubectl delete pod` + stopwatch.
pub fn measure_once(rig: &mut Fig4Rig, component: Component) -> Option<SimDuration> {
    let pod = component.pod_name(&rig.job);
    let kube = rig.platform.kube().clone();
    let fault_at: SimTime = rig.sim.now();
    let needs_ready = component.needs_readiness();
    let kube2 = kube.clone();
    let pod2 = pod.clone();
    let recovered = move |sim: &Sim| {
        let restarted = kube2.pod_started_at(&pod2).is_some_and(|t| t > fault_at);
        if !restarted {
            return false;
        }
        if needs_ready {
            kube2.pod_ready(sim, &pod2)
        } else {
            true
        }
    };
    let r = measure_recovery(
        &mut rig.sim,
        move |sim| {
            kube.delete_pod(sim, &pod);
        },
        recovered,
        SimDuration::from_secs(120),
    );
    if let Some(d) = r {
        rig.sim.metrics().observe_duration_us(
            RECOVERY_SECONDS,
            &[("component", component.label())],
            d.as_micros(),
        );
    }
    // Let the platform settle before the next fault.
    rig.sim.run_for(SimDuration::from_secs(30));
    r
}

/// A full Fig. 4 run: per-component stats plus the metrics registry the
/// measurements were recorded into (see [`RECOVERY_SECONDS`]).
#[derive(Debug)]
pub struct Fig4Run {
    /// Per-component results, in the paper's row order.
    pub results: Vec<Fig4Result>,
    /// The rig's metrics registry; recovery percentiles come from here.
    pub metrics: dlaas_sim::Registry,
}

/// Runs `trials` recoveries for every component on one rig.
pub fn run_all(seed: u64, trials: u32) -> Fig4Run {
    let mut rig = rig(seed);
    let results = Component::all()
        .iter()
        .map(|c| {
            let mut stats = RecoveryStats::new();
            for _ in 0..trials {
                if let Some(d) = measure_once(&mut rig, *c) {
                    stats.push(d);
                }
            }
            Fig4Result {
                component: *c,
                stats,
            }
        })
        .collect();
    Fig4Run {
        results,
        metrics: rig.sim.metrics().clone(),
    }
}

/// Runs `trials` recoveries for one component on its own fresh rig,
/// reporting the simulated time consumed. The unit of parallelism for
/// [`run_parallel`]: each component's measurements are independent of
/// every other component's because nothing carries over between rigs.
pub fn measure_component(seed: u64, component: Component, trials: u32) -> TrialRun<Fig4Result> {
    let mut rig = rig(seed);
    let mut stats = RecoveryStats::new();
    for _ in 0..trials {
        if let Some(d) = measure_once(&mut rig, component) {
            stats.push(d);
        }
    }
    TrialRun {
        result: Fig4Result { component, stats },
        sim_elapsed: rig.sim.now().saturating_duration_since(SimTime::ZERO),
    }
}

/// Runs every component's `trials` recoveries on `threads` workers, one
/// runner trial per component, each on a fresh rig booted from the same
/// seed. Records merge in `Component::all()` order and the recovery
/// histogram is replayed from the merged samples, so the table and
/// metrics exposition are byte-identical at any thread count. Panics if
/// any trial was recorded abnormal — the repro command is in the message.
pub fn run_parallel(seed: u64, trials: u32, threads: usize) -> Fig4Run {
    let specs: Vec<Trial<Component>> = Component::all()
        .into_iter()
        .map(|c| Trial {
            label: format!("fig4/{}", c.label()),
            repro: format!("cargo run --release -p dlaas-bench --bin fig4 -- {seed} {trials}"),
            spec: c,
        })
        .collect();
    let report = CampaignRunner::new("fig4", threads)
        .run(specs, |&c, _ctx| measure_component(seed, c, trials));
    let abnormal = report.failure_records();
    assert!(
        abnormal.is_empty(),
        "fig4 campaign had abnormal trials:\n{}",
        abnormal.join("\n")
    );
    let metrics = dlaas_sim::Registry::new();
    let results: Vec<Fig4Result> = report.results().cloned().collect();
    // Replay every sample into the aggregate histogram in merged
    // (component-major) order.
    for r in &results {
        for d in r.stats.samples() {
            metrics.observe_duration_us(
                RECOVERY_SECONDS,
                &[("component", r.component.label())],
                d.as_micros(),
            );
        }
    }
    Fig4Run { results, metrics }
}

/// The §III-d side claim: "Creation of the Guardian is a very quick
/// (less than 3s in our experiments) single step process." Measures from
/// the LCM receiving the deploy call (job still PENDING) to the Guardian
/// container running.
pub fn guardian_creation_time(seed: u64) -> SimDuration {
    let mut sim = Sim::new(seed);
    sim.trace_mut().set_enabled(false);
    let platform = experiment_platform(&mut sim, GpuKind::K80, 1);
    let manifest = TrainingManifest::builder("quick")
        .framework(Framework::Caffe)
        .model(DlModel::Vgg16)
        .gpus(GpuKind::K80, 1)
        .data("bench-data", "d/", 2_000_000_000)
        .results("bench-results")
        .iterations(100)
        .build()
        .expect("valid manifest");
    let client = platform.client("bench", BENCH_KEY);
    let got: Rc<RefCell<Option<JobId>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    client.submit(&mut sim, manifest, move |_s, r| {
        *g.borrow_mut() = Some(r.expect("accepted"));
    });
    sim.run_until_pred(|_| got.borrow().is_some());
    let job = got.borrow().clone().expect("submitted");
    let from = sim.now();
    let kube = platform.kube().clone();
    let gpod = paths::guardian_job(&job);
    sim.run_until_pred(move |_| kube.pod_phase(&gpod) == Some(dlaas_kube::PodPhase::Running));
    sim.now() - from
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learner_recovery_dwarfs_guardian_recovery() {
        let mut r = rig(31);
        let guardian = measure_once(&mut r, Component::Guardian).expect("guardian recovers");
        let learner = measure_once(&mut r, Component::Learner).expect("learner recovers");
        assert!(
            learner > guardian * 4,
            "learner {learner} must dwarf guardian {guardian}"
        );
    }

    #[test]
    fn guardian_creation_under_three_seconds() {
        let d = guardian_creation_time(32);
        assert!(
            d < SimDuration::from_secs(3),
            "guardian creation took {d} (paper: <3s)"
        );
    }
}
