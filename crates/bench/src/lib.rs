//! # dlaas-bench — the paper's evaluation, regenerated
//!
//! One module per experiment; each binary under `src/bin/` prints the
//! corresponding table. See `EXPERIMENTS.md` at the repository root for
//! paper-vs-measured numbers.

#![forbid(unsafe_code)]

pub mod engine;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod harness;
pub mod matrix;
pub mod runner;
pub mod traffic;
pub mod workload;

pub use harness::{measure_dlaas_throughput, JobRun};
