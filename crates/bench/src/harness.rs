//! Shared experiment machinery: boot a platform, run one training job
//! through the whole stack, and report the measured throughput.

use std::cell::RefCell;
use std::rc::Rc;

use dlaas_core::{
    DlaasPlatform, GpuNodeSpec, JobId, JobStatus, PlatformConfig, Tenant, TrainingManifest,
};
use dlaas_gpu::{DlModel, ExecEnv, Framework, GpuKind, Interconnect, TrainingConfig};
use dlaas_sim::{Sim, SimDuration};

/// API key used by every experiment tenant.
pub const BENCH_KEY: &str = "bench-key";

/// Outcome of running one job through the platform.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRun {
    /// The job id.
    pub job: JobId,
    /// Terminal status.
    pub status: JobStatus,
    /// Throughput measured by the learners (images/sec), when completed.
    pub images_per_sec: Option<f64>,
    /// Simulated seconds from submission to completion.
    pub wall_secs: f64,
}

/// Builds a platform sized for the experiment's GPU demand.
pub fn experiment_platform(sim: &mut Sim, kind: GpuKind, gpus_per_node: u32) -> DlaasPlatform {
    let cfg = PlatformConfig {
        gpu_nodes: vec![GpuNodeSpec {
            kind,
            count: 2,
            gpus_each: gpus_per_node.max(1),
        }],
        ..PlatformConfig::default()
    };
    let p = DlaasPlatform::new(sim, cfg);
    p.run_until_ready(sim, SimDuration::from_secs(60));
    p.add_tenant(&Tenant::new("bench", BENCH_KEY, 0))
        .expect("bootstrap tenant insert");
    p.seed_dataset("bench-data", "d/", 2_000_000_000);
    p.create_bucket("bench-results");
    p
}

/// Standard manifest for throughput experiments (no checkpoints, so the
/// measured rate is clean steady-state training).
pub fn throughput_manifest(
    model: DlModel,
    framework: Framework,
    gpu: GpuKind,
    gpus: u32,
    iterations: u64,
) -> TrainingManifest {
    TrainingManifest::builder(format!("{model}-{framework}-x{gpus}"))
        .framework(framework)
        .model(model)
        .gpus(gpu, gpus)
        .learners(1)
        .data("bench-data", "d/", 2_000_000_000)
        .results("bench-results")
        .iterations(iterations)
        .build()
        .expect("valid experiment manifest")
}

/// Submits `manifest` on a fresh platform and runs it to a terminal
/// state, returning the measured numbers. `seed` controls all simulated
/// noise (placement, jitter, timings).
pub fn measure_dlaas_throughput(seed: u64, manifest: TrainingManifest) -> JobRun {
    measure_dlaas_throughput_with(seed, manifest, dlaas_core::CoreConfig::default())
}

/// Like [`measure_dlaas_throughput`], with explicit control-plane config
/// (used by sensitivity sweeps).
pub fn measure_dlaas_throughput_with(
    seed: u64,
    manifest: TrainingManifest,
    core: dlaas_core::CoreConfig,
) -> JobRun {
    let mut sim = Sim::new(seed);
    sim.trace_mut().set_enabled(false);
    let platform = {
        let cfg = PlatformConfig {
            core,
            gpu_nodes: vec![GpuNodeSpec {
                kind: manifest.gpu_kind,
                count: 2,
                gpus_each: (manifest.gpus_per_learner * manifest.learners).max(1),
            }],
            ..PlatformConfig::default()
        };
        let p = DlaasPlatform::new(&mut sim, cfg);
        p.run_until_ready(&mut sim, SimDuration::from_secs(60));
        p.add_tenant(&Tenant::new("bench", BENCH_KEY, 0))
            .expect("bootstrap tenant insert");
        p.seed_dataset("bench-data", "d/", 2_000_000_000);
        p.create_bucket("bench-results");
        p
    };
    let client = platform.client("bench", BENCH_KEY);

    let got: Rc<RefCell<Option<JobId>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    client.submit(&mut sim, manifest, move |_s, r| {
        *g.borrow_mut() = Some(r.expect("submission accepted"));
    });
    sim.run_until_pred(|_| got.borrow().is_some());
    let job = got.borrow().clone().expect("submitted");
    let submitted_at = sim.now();

    let status = platform
        .wait_for_status(
            &mut sim,
            &job,
            JobStatus::Completed,
            SimDuration::from_hours(12),
        )
        .unwrap_or(JobStatus::Failed);
    let info = platform.job_info(&job).expect("job recorded");
    JobRun {
        job,
        status,
        images_per_sec: info.images_per_sec,
        wall_secs: (sim.now() - submitted_at).as_secs_f64(),
    }
}

/// The bare-metal comparison arm: the same training computation without
/// any platform (no container, no helpers), measured the same way the
/// paper measured its baseline — a separate manual run on identical
/// hardware, with its own run-to-run jitter.
pub fn bare_metal_images_per_sec(
    seed: u64,
    model: DlModel,
    framework: Framework,
    gpu: GpuKind,
    gpus: u32,
    env: ExecEnv,
    jitter: f64,
) -> f64 {
    let cfg = TrainingConfig {
        model,
        framework,
        gpu,
        gpus_per_learner: gpus,
        learners: 1,
        intra_interconnect: gpu.native_interconnect(),
        inter_interconnect: Interconnect::Ethernet1G,
        batch_per_gpu: model.batch_per_gpu(),
    };
    let base = dlaas_gpu::images_per_sec(&cfg, &env);
    // An independent measurement has independent noise.
    let label = format!("baremetal/{model}/{framework}/{gpu}/{gpus}");
    // dlaas-lint: allow(unseeded-rng): bare-metal baseline stream is derived from the explicit run seed passed by the caller, outside any Sim instance; still fully reproducible.
    let mut rng = dlaas_sim::SimRng::new(seed).fork(&label);
    if jitter > 0.0 {
        base * rng.range_f64(1.0 - jitter, 1.0 + jitter)
    } else {
        base
    }
}

/// Percentage difference `(baseline - measured) / baseline * 100`.
pub fn pct_diff(baseline: f64, measured: f64) -> f64 {
    (baseline - measured) / baseline * 100.0
}

/// Prints a table row list with a header (fixed-width, paper style).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    // dlaas-lint: allow(debug-print): bench table renderer shared by the CLI bins; stdout is its API and it never runs inside the simulation.
    println!("\n=== {title} ===");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, std::string::String::len))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    // dlaas-lint: allow(debug-print): bench table renderer shared by the CLI bins; stdout is its API and it never runs inside the simulation.
    println!("{}", fmt_row(&header_cells));
    // dlaas-lint: allow(debug-print): bench table renderer shared by the CLI bins; stdout is its API and it never runs inside the simulation.
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for r in rows {
        // dlaas-lint: allow(debug-print): bench table renderer shared by the CLI bins; stdout is its API and it never runs inside the simulation.
        println!("{}", fmt_row(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_diff_signs() {
        assert!((pct_diff(100.0, 95.0) - 5.0).abs() < 1e-9);
        assert!(pct_diff(100.0, 105.0) < 0.0);
    }

    #[test]
    fn bare_metal_is_deterministic_per_seed() {
        let a = bare_metal_images_per_sec(
            1,
            DlModel::Resnet50,
            Framework::TensorFlow,
            GpuKind::K80,
            1,
            ExecEnv::bare_metal_streaming(0.117e9),
            0.015,
        );
        let b = bare_metal_images_per_sec(
            1,
            DlModel::Resnet50,
            Framework::TensorFlow,
            GpuKind::K80,
            1,
            ExecEnv::bare_metal_streaming(0.117e9),
            0.015,
        );
        assert_eq!(a, b);
        let c = bare_metal_images_per_sec(
            2,
            DlModel::Resnet50,
            Framework::TensorFlow,
            GpuKind::K80,
            1,
            ExecEnv::bare_metal_streaming(0.117e9),
            0.015,
        );
        assert_ne!(a, c);
    }

    #[test]
    fn full_stack_throughput_close_to_model() {
        let m = throughput_manifest(
            DlModel::Resnet50,
            Framework::TensorFlow,
            GpuKind::K80,
            1,
            300,
        );
        let run = measure_dlaas_throughput(3, m);
        assert_eq!(run.status, JobStatus::Completed);
        let thr = run.images_per_sec.expect("throughput measured");
        // Model says ~52 img/s minus platform overheads and jitter.
        assert!((40.0..60.0).contains(&thr), "{thr}");
    }
}
