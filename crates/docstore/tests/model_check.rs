//! Property-based model checking: the document store against a naive
//! in-memory model, under random operation sequences — including crash
//! points, where the store is rebuilt from its journal and must equal
//! the model exactly.

use std::collections::BTreeMap;

use dlaas_docstore::{obj, DocStore, Filter, Update, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert { id: u8, n: i64, status: u8 },
    UpdateStatus { n_lt: i64, status: u8 },
    DeleteById { id: u8 },
    DeleteByStatus { status: u8 },
    CreateIndex,
    Crash,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..40u8, -50..50i64, 0..4u8).prop_map(|(id, n, status)| Op::Insert { id, n, status }),
        3 => (-50..50i64, 0..4u8).prop_map(|(n_lt, status)| Op::UpdateStatus { n_lt, status }),
        2 => (0..40u8).prop_map(|id| Op::DeleteById { id }),
        1 => (0..4u8).prop_map(|status| Op::DeleteByStatus { status }),
        1 => Just(Op::CreateIndex),
        1 => Just(Op::Crash),
    ]
}

fn status_name(s: u8) -> String {
    format!("S{s}")
}

/// The naive model: id -> (n, status).
type Model = BTreeMap<String, (i64, String)>;

fn check_equal(store: &DocStore, model: &Model) {
    let docs = store.find("c", &Filter::True);
    assert_eq!(docs.len(), model.len(), "cardinality mismatch");
    for doc in docs {
        let id = doc.path("_id").unwrap().as_str().unwrap();
        let n = doc.path("n").unwrap().as_i64().unwrap();
        let status = doc.path("status").unwrap().as_str().unwrap();
        let (mn, ms) = model.get(id).unwrap_or_else(|| panic!("ghost doc {id}"));
        assert_eq!((n, status), (*mn, ms.as_str()), "mismatch for {id}");
    }
    // Query equivalence for every status value.
    for s in 0..4u8 {
        let by_store = store.count("c", &Filter::eq("status", status_name(s)));
        let by_model = model
            .values()
            .filter(|(_, st)| *st == status_name(s))
            .count();
        assert_eq!(by_store, by_model, "status query mismatch for S{s}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn store_matches_naive_model_across_crashes(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut store = DocStore::new();
        let mut model: Model = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert { id, n, status } => {
                    let id = format!("d{id}");
                    let doc = obj! { "_id" => id.clone(), "n" => n, "status" => status_name(status) };
                    let r = store.insert("c", doc);
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(id) {
                        prop_assert!(r.is_ok());
                        e.insert((n, status_name(status)));
                    } else {
                        prop_assert!(r.is_err(), "duplicate insert must fail");
                    }
                }
                Op::UpdateStatus { n_lt, status } => {
                    let count = store.update_many(
                        "c",
                        &Filter::lt("n", n_lt),
                        &Update::set("status", status_name(status)),
                    );
                    let mut model_count = 0;
                    for (n, st) in model.values_mut() {
                        if *n < n_lt {
                            *st = status_name(status);
                            model_count += 1;
                        }
                    }
                    prop_assert_eq!(count, model_count);
                }
                Op::DeleteById { id } => {
                    let id = format!("d{id}");
                    let deleted = store.delete_one("c", &Filter::eq("_id", id.as_str()));
                    prop_assert_eq!(deleted, model.remove(&id).is_some());
                }
                Op::DeleteByStatus { status } => {
                    let n = store.delete_many("c", &Filter::eq("status", status_name(status)));
                    let before = model.len();
                    model.retain(|_, (_, st)| *st != status_name(status));
                    prop_assert_eq!(n, before - model.len());
                }
                Op::CreateIndex => {
                    store.create_index("c", "status");
                }
                Op::Crash => {
                    let journal = store.journal().clone();
                    store = DocStore::recover(journal);
                }
            }
            check_equal(&store, &model);
        }

        // Final crash: recovery must still match.
        let recovered = DocStore::recover(store.journal().clone());
        check_equal(&recovered, &model);
    }

    #[test]
    fn value_ordering_is_total_and_consistent(a in any::<i64>(), b in any::<i64>()) {
        use std::cmp::Ordering;
        let va = Value::from(a);
        let vb = Value::from(b);
        prop_assert_eq!(va.cmp_order(&vb), a.cmp(&b));
        // Antisymmetry with floats in the mix.
        let fa = Value::from(a as f64);
        let cmp1 = va.cmp_order(&fa);
        let cmp2 = fa.cmp_order(&va);
        prop_assert_eq!(cmp1, cmp2.reverse());
        prop_assert_ne!(va.cmp_order(&Value::Null), Ordering::Less);
    }
}
