//! Filters (query predicates) and updates (mutations) over documents.

use crate::value::Value;

/// A query predicate over documents, matched against dotted paths.
///
/// # Examples
///
/// ```
/// use dlaas_docstore::{obj, Filter};
///
/// let doc = obj! { "status" => "PROCESSING", "learners" => 4 };
/// let f = Filter::and(vec![
///     Filter::eq("status", "PROCESSING"),
///     Filter::gt("learners", 2),
/// ]);
/// assert!(f.matches(&doc));
/// assert!(!Filter::eq("status", "FAILED").matches(&doc));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Matches every document.
    True,
    /// Path value equals.
    Eq(String, Value),
    /// Path value differs (also true when the path is absent).
    Ne(String, Value),
    /// Path value strictly greater.
    Gt(String, Value),
    /// Path value greater or equal.
    Gte(String, Value),
    /// Path value strictly less.
    Lt(String, Value),
    /// Path value less or equal.
    Lte(String, Value),
    /// Path value is one of the listed values.
    In(String, Vec<Value>),
    /// Path exists (`true`) or is absent (`false`).
    Exists(String, bool),
    /// Path is a string starting with the prefix.
    Prefix(String, String),
    /// All sub-filters match.
    And(Vec<Filter>),
    /// At least one sub-filter matches.
    Or(Vec<Filter>),
    /// The sub-filter does not match.
    Not(Box<Filter>),
}

impl Filter {
    /// Equality on a dotted path.
    pub fn eq(path: impl Into<String>, v: impl Into<Value>) -> Self {
        Filter::Eq(path.into(), v.into())
    }

    /// Strict greater-than on a dotted path.
    pub fn gt(path: impl Into<String>, v: impl Into<Value>) -> Self {
        Filter::Gt(path.into(), v.into())
    }

    /// Strict less-than on a dotted path.
    pub fn lt(path: impl Into<String>, v: impl Into<Value>) -> Self {
        Filter::Lt(path.into(), v.into())
    }

    /// Conjunction.
    pub fn and(fs: Vec<Filter>) -> Self {
        Filter::And(fs)
    }

    /// Disjunction.
    pub fn or(fs: Vec<Filter>) -> Self {
        Filter::Or(fs)
    }

    /// Evaluates the predicate against a document.
    pub fn matches(&self, doc: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self {
            Filter::True => true,
            Filter::Eq(p, v) => doc.path(p).is_some_and(|x| x.cmp_order(v) == Equal),
            Filter::Ne(p, v) => doc.path(p).is_none_or(|x| x.cmp_order(v) != Equal),
            Filter::Gt(p, v) => doc.path(p).is_some_and(|x| x.cmp_order(v) == Greater),
            Filter::Gte(p, v) => doc.path(p).is_some_and(|x| x.cmp_order(v) != Less),
            Filter::Lt(p, v) => doc.path(p).is_some_and(|x| x.cmp_order(v) == Less),
            Filter::Lte(p, v) => doc.path(p).is_some_and(|x| x.cmp_order(v) != Greater),
            Filter::In(p, vs) => doc
                .path(p)
                .is_some_and(|x| vs.iter().any(|v| x.cmp_order(v) == Equal)),
            Filter::Exists(p, want) => doc.path(p).is_some() == *want,
            Filter::Prefix(p, pre) => doc
                .path(p)
                .and_then(Value::as_str)
                .is_some_and(|s| s.starts_with(pre)),
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
            Filter::Not(f) => !f.matches(doc),
        }
    }

    /// If this filter pins an exact value on `path` (directly or inside an
    /// `And`), returns that value — used for index lookups.
    pub fn pinned_eq(&self, path: &str) -> Option<&Value> {
        match self {
            Filter::Eq(p, v) if p == path => Some(v),
            Filter::And(fs) => fs.iter().find_map(|f| f.pinned_eq(path)),
            _ => None,
        }
    }

    /// If this filter restricts `path` to a fixed set of values via `In`
    /// (directly or inside an `And`), returns that set — used for index
    /// lookups that union the per-value posting lists.
    pub fn pinned_in(&self, path: &str) -> Option<&[Value]> {
        match self {
            Filter::In(p, vs) if p == path => Some(vs),
            Filter::And(fs) => fs.iter().find_map(|f| f.pinned_in(path)),
            _ => None,
        }
    }
}

/// A document mutation, applied field-by-field.
///
/// # Examples
///
/// ```
/// use dlaas_docstore::{obj, Update, Value};
///
/// let mut doc = obj! { "status" => "PENDING", "retries" => 0 };
/// Update::set("status", "DEPLOYING").apply(&mut doc);
/// Update::inc("retries", 1).apply(&mut doc);
/// assert_eq!(doc.path("status").unwrap().as_str(), Some("DEPLOYING"));
/// assert_eq!(doc.path("retries").unwrap().as_i64(), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// Sets the path to a value (creating intermediate objects).
    Set(String, Value),
    /// Removes the path's final field.
    Unset(String),
    /// Adds to an integer field (missing/non-numeric treated as 0).
    Inc(String, i64),
    /// Appends to an array field (missing treated as empty array).
    Push(String, Value),
    /// Applies several updates in order.
    Many(Vec<Update>),
}

impl Update {
    /// Field assignment.
    pub fn set(path: impl Into<String>, v: impl Into<Value>) -> Self {
        Update::Set(path.into(), v.into())
    }

    /// Integer increment.
    pub fn inc(path: impl Into<String>, by: i64) -> Self {
        Update::Inc(path.into(), by)
    }

    /// Array append.
    pub fn push(path: impl Into<String>, v: impl Into<Value>) -> Self {
        Update::Push(path.into(), v.into())
    }

    /// Applies the mutation to `doc`. Silently skips paths blocked by
    /// scalar intermediates (matching MongoDB's lenient update semantics).
    pub fn apply(&self, doc: &mut Value) {
        match self {
            Update::Set(p, v) => {
                if let Some(slot) = doc.path_mut_or_create(p) {
                    *slot = v.clone();
                }
            }
            Update::Unset(p) => {
                let (parent, leaf) = match p.rsplit_once('.') {
                    Some((a, b)) => (Some(a), b),
                    None => (None, p.as_str()),
                };
                let target = match parent {
                    Some(pp) => doc.path_mut_or_create(pp),
                    None => Some(doc),
                };
                if let Some(Value::Obj(m)) = target {
                    m.remove(leaf);
                }
            }
            Update::Inc(p, by) => {
                if let Some(slot) = doc.path_mut_or_create(p) {
                    let cur = slot.as_i64().unwrap_or(0);
                    *slot = Value::I64(cur + by);
                }
            }
            Update::Push(p, v) => {
                if let Some(slot) = doc.path_mut_or_create(p) {
                    match slot {
                        Value::Arr(a) => a.push(v.clone()),
                        _ => *slot = Value::Arr(vec![v.clone()]),
                    }
                }
            }
            Update::Many(us) => {
                for u in us {
                    u.apply(doc);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;

    fn sample() -> Value {
        obj! {
            "name" => "job-1",
            "status" => "PROCESSING",
            "learners" => 4,
            "gpu" => obj! { "kind" => "K80" },
            "tags" => vec!["a", "b"],
            "progress" => 0.5,
        }
    }

    #[test]
    fn comparison_filters() {
        let d = sample();
        assert!(Filter::True.matches(&d));
        assert!(Filter::eq("status", "PROCESSING").matches(&d));
        assert!(Filter::eq("gpu.kind", "K80").matches(&d));
        assert!(Filter::gt("learners", 3).matches(&d));
        assert!(!Filter::gt("learners", 4).matches(&d));
        assert!(Filter::Gte("learners".into(), 4.into()).matches(&d));
        assert!(Filter::lt("progress", 0.6).matches(&d));
        assert!(Filter::Lte("progress".into(), 0.5.into()).matches(&d));
        assert!(
            Filter::gt("learners", 3.5).matches(&d),
            "cross-type numeric"
        );
    }

    #[test]
    fn ne_and_exists_semantics_on_missing_paths() {
        let d = sample();
        assert!(Filter::Ne("missing".into(), 1.into()).matches(&d));
        assert!(!Filter::eq("missing", 1).matches(&d));
        assert!(Filter::Exists("gpu.kind".into(), true).matches(&d));
        assert!(Filter::Exists("gpu.count".into(), false).matches(&d));
        assert!(!Filter::gt("missing", 0).matches(&d));
    }

    #[test]
    fn in_prefix_and_boolean_combinators() {
        let d = sample();
        assert!(
            Filter::In("status".into(), vec!["PENDING".into(), "PROCESSING".into()]).matches(&d)
        );
        assert!(Filter::Prefix("name".into(), "job-".into()).matches(&d));
        assert!(!Filter::Prefix("learners".into(), "4".into()).matches(&d));
        assert!(Filter::and(vec![
            Filter::eq("status", "PROCESSING"),
            Filter::Not(Box::new(Filter::eq("name", "job-2"))),
        ])
        .matches(&d));
        assert!(Filter::or(vec![
            Filter::eq("status", "FAILED"),
            Filter::eq("status", "PROCESSING"),
        ])
        .matches(&d));
        assert!(!Filter::And(vec![Filter::True, Filter::eq("learners", 5)]).matches(&d));
    }

    #[test]
    fn pinned_eq_extraction() {
        let f = Filter::and(vec![
            Filter::gt("learners", 1),
            Filter::eq("status", "PROCESSING"),
        ]);
        assert_eq!(f.pinned_eq("status"), Some(&Value::from("PROCESSING")));
        assert_eq!(f.pinned_eq("learners"), None);
        assert_eq!(Filter::True.pinned_eq("status"), None);
    }

    #[test]
    fn pinned_in_extraction() {
        let vs: Vec<Value> = vec!["PENDING".into(), "DEPLOYING".into()];
        let f = Filter::and(vec![
            Filter::gt("learners", 1),
            Filter::In("status".into(), vs.clone()),
        ]);
        assert_eq!(f.pinned_in("status"), Some(vs.as_slice()));
        assert_eq!(f.pinned_in("learners"), None);
        assert_eq!(
            Filter::In("status".into(), vs.clone()).pinned_in("status"),
            Some(vs.as_slice())
        );
        assert_eq!(Filter::True.pinned_in("status"), None);
        // `In` under an `Or` must not be treated as pinning: the other arm
        // can match documents outside the listed set.
        let or = Filter::or(vec![Filter::In("status".into(), vs), Filter::True]);
        assert_eq!(or.pinned_in("status"), None);
    }

    #[test]
    fn updates() {
        let mut d = sample();
        Update::set("status", "COMPLETED").apply(&mut d);
        Update::set("metrics.loss", 0.01).apply(&mut d);
        Update::inc("learners", 2).apply(&mut d);
        Update::push("tags", "c").apply(&mut d);
        Update::Unset("gpu".into()).apply(&mut d);
        assert_eq!(d.path("status").unwrap().as_str(), Some("COMPLETED"));
        assert_eq!(d.path("metrics.loss").unwrap().as_f64(), Some(0.01));
        assert_eq!(d.path("learners").unwrap().as_i64(), Some(6));
        assert_eq!(d.path("tags").unwrap().as_arr().unwrap().len(), 3);
        assert!(d.path("gpu").is_none());
    }

    #[test]
    fn update_edge_cases() {
        let mut d = obj! {};
        Update::inc("fresh", 5).apply(&mut d);
        assert_eq!(d.path("fresh").unwrap().as_i64(), Some(5));
        Update::push("list", 1).apply(&mut d);
        Update::push("list", 2).apply(&mut d);
        assert_eq!(d.path("list").unwrap().as_arr().unwrap().len(), 2);
        // Push onto a scalar replaces it with a singleton array.
        Update::push("fresh", 9).apply(&mut d);
        assert_eq!(d.path("fresh").unwrap().as_arr().unwrap().len(), 1);
        // Unset at top level and nested-missing are no-ops.
        Update::Unset("ghost".into()).apply(&mut d);
        Update::Many(vec![Update::set("a", 1), Update::set("b", 2)]).apply(&mut d);
        assert_eq!(d.path("a").unwrap().as_i64(), Some(1));
        assert_eq!(d.path("b").unwrap().as_i64(), Some(2));
    }
}
