//! # dlaas-docstore — journaled document store (the MongoDB stand-in)
//!
//! DLaaS keeps all job metadata in MongoDB: *"When a job deployment request
//! arrives, the API layer stores all the metadata in MongoDB before
//! acknowledging the request. This ensures that submitted jobs are never
//! lost."* (paper §III-c). This crate reproduces the pieces of MongoDB
//! that guarantee relies on:
//!
//! * [`Value`] / [`obj!`] — JSON/BSON-like documents,
//! * [`Filter`] / [`Update`] — queries and mutations over dotted paths,
//! * [`DocStore`] — collections with secondary indexes (equality *and*
//!   `In` filters route through them, preserving scan order) and a
//!   write-ahead [`Journal`]; [`DocStore::recover`] rebuilds state after
//!   a crash,
//! * [`MongoServer`] — the store as an RPC service with modelled
//!   journal-write/read latencies and crash/recover.
//!
//! # Examples
//!
//! ```
//! use dlaas_docstore::{obj, DocStore, Filter, Update};
//!
//! let mut db = DocStore::new();
//! db.insert("jobs", obj! { "_id" => "j1", "status" => "PENDING" })?;
//!
//! // Crash: everything in memory is gone, the journal survives.
//! let journal = db.journal().clone();
//! drop(db);
//!
//! let recovered = DocStore::recover(journal);
//! assert!(recovered.find_one("jobs", &Filter::eq("_id", "j1")).is_some());
//! # Ok::<(), dlaas_docstore::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod query;
mod server;
mod store;
mod value;

pub use query::{Filter, Update};
pub use server::{mongo_addr, MongoRequest, MongoResponse, MongoRpc, MongoServer, MongoTimings};
pub use store::{DocStore, Journal, JournalOp, StoreError};
pub use value::Value;
