//! The document store as a network service (the "MongoDB pod").
//!
//! A single-primary server over the RPC layer with a modelled per-op disk
//! latency. Crash/restart reproduces MongoDB's journaled recovery: the
//! in-memory store dies with the process; the journal survives and the
//! restarted server replays it.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use dlaas_net::{Addr, Responder, RpcLayer};
use dlaas_sim::{Sim, SimDuration};

use crate::query::{Filter, Update};
use crate::store::{DocStore, Journal};
use crate::value::Value;

/// Requests understood by the document-store server.
#[derive(Debug, Clone, PartialEq)]
pub enum MongoRequest {
    /// Insert a document.
    InsertOne {
        /// Target collection.
        coll: String,
        /// The document (object root).
        doc: Value,
    },
    /// Return the first matching document.
    FindOne {
        /// Target collection.
        coll: String,
        /// Predicate.
        filter: Filter,
    },
    /// Return all matching documents.
    Find {
        /// Target collection.
        coll: String,
        /// Predicate.
        filter: Filter,
    },
    /// Update the first matching document.
    UpdateOne {
        /// Target collection.
        coll: String,
        /// Predicate.
        filter: Filter,
        /// Mutation.
        update: Update,
    },
    /// Update every matching document.
    UpdateMany {
        /// Target collection.
        coll: String,
        /// Predicate.
        filter: Filter,
        /// Mutation.
        update: Update,
    },
    /// Delete the first matching document.
    DeleteOne {
        /// Target collection.
        coll: String,
        /// Predicate.
        filter: Filter,
    },
    /// Delete every matching document.
    DeleteMany {
        /// Target collection.
        coll: String,
        /// Predicate.
        filter: Filter,
    },
    /// Count matching documents.
    Count {
        /// Target collection.
        coll: String,
        /// Predicate.
        filter: Filter,
    },
    /// Return the change feed above a watermark (see
    /// [`DocStore::changed_since`]): work proportional to the number of
    /// changed documents, not the collection size.
    FindChanged {
        /// Target collection.
        coll: String,
        /// Sequence watermark; `0` means the full feed.
        since: u64,
    },
    /// Create a secondary index.
    CreateIndex {
        /// Target collection.
        coll: String,
        /// Dotted path to index.
        path: String,
    },
}

/// Responses from the document-store server.
#[derive(Debug, Clone, PartialEq)]
pub enum MongoResponse {
    /// Insert succeeded with this id.
    Inserted {
        /// Assigned or provided `_id`.
        id: String,
    },
    /// Zero-or-one document.
    Doc(Option<Value>),
    /// All matching documents.
    Docs(Vec<Value>),
    /// Number of documents updated.
    Updated(usize),
    /// Number of documents deleted.
    Deleted(usize),
    /// Count result.
    Count(usize),
    /// Change feed above the requested watermark.
    Changed {
        /// Documents that changed and still exist, in change order.
        docs: Vec<Value>,
        /// Ids whose latest change was a removal.
        gone: Vec<String>,
        /// Current high-water sequence number (the next `since`).
        high_water: u64,
    },
    /// Index created / generic success.
    Ok,
}

/// RPC layer type used by the document store.
pub type MongoRpc = RpcLayer<MongoRequest, MongoResponse>;

/// Well-known address of the metadata store service.
pub fn mongo_addr() -> Addr {
    Addr::new("mongodb")
}

/// Modelled service times (journaled write vs cached read).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MongoTimings {
    /// Latency added to mutations (journal fsync).
    pub write: SimDuration,
    /// Latency added to queries.
    pub read: SimDuration,
}

impl Default for MongoTimings {
    fn default() -> Self {
        MongoTimings {
            write: SimDuration::from_micros(1_500),
            read: SimDuration::from_micros(300),
        }
    }
}

/// The MongoDB stand-in service.
pub struct MongoServer {
    store: Rc<RefCell<DocStore>>,
    rpc: MongoRpc,
    addr: Addr,
    timings: MongoTimings,
    up: Rc<RefCell<bool>>,
    /// Degraded mode: writes are dropped (clients time out) while reads
    /// keep working — a journal-device stall rather than a full crash.
    fail_writes: Rc<RefCell<bool>>,
    /// Per-op handles to the `mongo_docs_examined` histogram, resolved on
    /// each op's first observation and bumped directly thereafter — the
    /// per-request label canonicalization is off the hot path.
    examined: RefCell<BTreeMap<&'static str, dlaas_sim::HistogramHandle>>,
}

impl std::fmt::Debug for MongoServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MongoServer")
            .field("addr", &self.addr)
            .field("up", &*self.up.borrow())
            .finish()
    }
}

impl MongoServer {
    /// Starts a fresh server (empty store, new journal) at [`mongo_addr`].
    pub fn new(rpc: MongoRpc) -> Rc<Self> {
        Self::with_store(rpc, DocStore::new(), MongoTimings::default())
    }

    /// Starts a server over an existing store (used for recovery).
    pub fn with_store(rpc: MongoRpc, store: DocStore, timings: MongoTimings) -> Rc<Self> {
        let server = Rc::new(MongoServer {
            store: Rc::new(RefCell::new(store)),
            rpc,
            addr: mongo_addr(),
            timings,
            up: Rc::new(RefCell::new(true)),
            fail_writes: Rc::new(RefCell::new(false)),
            examined: RefCell::new(BTreeMap::new()),
        });
        server.serve();
        server
    }

    fn serve(self: &Rc<Self>) {
        let me = Rc::downgrade(self);
        self.rpc
            .serve(self.addr.clone(), move |sim, req, responder| {
                if let Some(server) = me.upgrade() {
                    if *server.up.borrow() {
                        server.handle(sim, req, responder);
                    }
                    // A crashed server drops the request: the client times out.
                }
            });
    }

    /// The journal — survives crashes; feed it to [`MongoServer::recover`].
    pub fn journal(&self) -> Journal {
        self.store.borrow().journal().clone()
    }

    /// Enters or leaves the degraded write-stall mode: while set, mutation
    /// requests are silently dropped (the client times out and retries)
    /// but reads are still served. Models a stalled journal device — the
    /// failure Fig. 4's "MongoDB crash" row recovers from without losing
    /// any acknowledged write.
    pub fn set_fail_writes(&self, fail: bool) {
        *self.fail_writes.borrow_mut() = fail;
    }

    /// `true` while the write-stall mode is active.
    pub fn failing_writes(&self) -> bool {
        *self.fail_writes.borrow()
    }

    /// Crash: stop serving and drop in-memory state. The journal survives.
    pub fn crash(&self) {
        *self.up.borrow_mut() = false;
        // Dropping volatile state is modelled by replacing the store with
        // an empty husk; the journal (disk) is extracted first by whoever
        // orchestrates recovery via `journal()`.
    }

    /// Builds a recovered server from a journal (call after [`MongoServer::crash`]).
    pub fn recover(rpc: MongoRpc, journal: Journal, timings: MongoTimings) -> Rc<Self> {
        Self::with_store(rpc, DocStore::recover(journal), timings)
    }

    /// Direct handle to the store (test/debug aid; bypasses the network).
    pub fn store(&self) -> &Rc<RefCell<DocStore>> {
        &self.store
    }

    fn handle(
        self: &Rc<Self>,
        sim: &mut Sim,
        req: MongoRequest,
        responder: Responder<MongoRequest, MongoResponse>,
    ) {
        let is_write = matches!(
            req,
            MongoRequest::InsertOne { .. }
                | MongoRequest::UpdateOne { .. }
                | MongoRequest::UpdateMany { .. }
                | MongoRequest::DeleteOne { .. }
                | MongoRequest::DeleteMany { .. }
                | MongoRequest::CreateIndex { .. }
        );
        if is_write && *self.fail_writes.borrow() {
            return; // stalled journal: the client times out
        }
        let delay = if is_write {
            self.timings.write
        } else {
            self.timings.read
        };
        // Work-count label for query-bearing ops (None: no candidate scan).
        let op_label = match &req {
            MongoRequest::InsertOne { .. } | MongoRequest::CreateIndex { .. } => None,
            MongoRequest::FindOne { .. } => Some("find_one"),
            MongoRequest::Find { .. } => Some("find"),
            MongoRequest::UpdateOne { .. } => Some("update_one"),
            MongoRequest::UpdateMany { .. } => Some("update_many"),
            MongoRequest::DeleteOne { .. } => Some("delete_one"),
            MongoRequest::DeleteMany { .. } => Some("delete_many"),
            MongoRequest::Count { .. } => Some("count"),
            MongoRequest::FindChanged { .. } => Some("find_changed"),
        };
        let me = self.clone();
        sim.schedule_in(delay, move |sim| {
            if !*me.up.borrow() {
                return; // crashed while the op was "on disk path"
            }
            let mut store = me.store.borrow_mut();
            let resp = match req {
                MongoRequest::InsertOne { coll, doc } => match store.insert(&coll, doc) {
                    Ok(id) => MongoResponse::Inserted { id },
                    Err(e) => {
                        drop(store);
                        responder.err(sim, e.to_string());
                        return;
                    }
                },
                MongoRequest::FindOne { coll, filter } => {
                    MongoResponse::Doc(store.find_one(&coll, &filter))
                }
                MongoRequest::Find { coll, filter } => {
                    MongoResponse::Docs(store.find(&coll, &filter))
                }
                MongoRequest::UpdateOne {
                    coll,
                    filter,
                    update,
                } => MongoResponse::Updated(store.update_one(&coll, &filter, &update) as usize),
                MongoRequest::UpdateMany {
                    coll,
                    filter,
                    update,
                } => MongoResponse::Updated(store.update_many(&coll, &filter, &update)),
                MongoRequest::DeleteOne { coll, filter } => {
                    MongoResponse::Deleted(store.delete_one(&coll, &filter) as usize)
                }
                MongoRequest::DeleteMany { coll, filter } => {
                    MongoResponse::Deleted(store.delete_many(&coll, &filter))
                }
                MongoRequest::Count { coll, filter } => {
                    MongoResponse::Count(store.count(&coll, &filter))
                }
                MongoRequest::FindChanged { coll, since } => {
                    let (docs, gone, high_water) = store.changed_since(&coll, since);
                    MongoResponse::Changed {
                        docs,
                        gone,
                        high_water,
                    }
                }
                MongoRequest::CreateIndex { coll, path } => {
                    store.create_index(&coll, &path);
                    MongoResponse::Ok
                }
            };
            let examined = store.last_examined();
            drop(store);
            if let Some(op) = op_label {
                me.examined
                    .borrow_mut()
                    .entry(op)
                    .or_insert_with(|| {
                        sim.metrics()
                            .histogram_handle("mongo_docs_examined", &[("op", op)])
                    })
                    .observe(examined as f64);
            }
            responder.ok(sim, resp);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;
    use dlaas_net::LatencyModel;

    fn boot() -> (Sim, MongoRpc, Rc<MongoServer>) {
        let mut sim = Sim::new(1);
        let rpc: MongoRpc = RpcLayer::new(&mut sim, LatencyModel::local());
        let server = MongoServer::new(rpc.clone());
        (sim, rpc, server)
    }

    fn call(
        sim: &mut Sim,
        rpc: &MongoRpc,
        req: MongoRequest,
    ) -> Rc<RefCell<Option<Result<MongoResponse, dlaas_net::RpcError>>>> {
        let out = Rc::new(RefCell::new(None));
        let o = out.clone();
        rpc.call(
            sim,
            Addr::new("client"),
            mongo_addr(),
            req,
            SimDuration::from_secs(1),
            move |_, r| *o.borrow_mut() = Some(r),
        );
        out
    }

    #[test]
    fn insert_and_find_over_rpc() {
        let (mut sim, rpc, _server) = boot();
        let ins = call(
            &mut sim,
            &rpc,
            MongoRequest::InsertOne {
                coll: "jobs".into(),
                doc: obj! { "_id" => "j1", "status" => "PENDING" },
            },
        );
        sim.run_until_idle();
        assert_eq!(
            ins.borrow().clone().unwrap().unwrap(),
            MongoResponse::Inserted { id: "j1".into() }
        );

        let found = call(
            &mut sim,
            &rpc,
            MongoRequest::FindOne {
                coll: "jobs".into(),
                filter: Filter::eq("_id", "j1"),
            },
        );
        sim.run_until_idle();
        let r = found.borrow().clone().unwrap().unwrap();
        match r {
            MongoResponse::Doc(Some(doc)) => {
                assert_eq!(doc.path("status").unwrap().as_str(), Some("PENDING"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn duplicate_insert_returns_remote_error() {
        let (mut sim, rpc, _server) = boot();
        let req = MongoRequest::InsertOne {
            coll: "jobs".into(),
            doc: obj! { "_id" => "dup" },
        };
        let first = call(&mut sim, &rpc, req.clone());
        sim.run_until_idle();
        assert!(first.borrow().clone().unwrap().is_ok());
        let second = call(&mut sim, &rpc, req);
        sim.run_until_idle();
        let r = second.borrow().clone().unwrap();
        match r {
            Err(dlaas_net::RpcError::Remote(m)) => assert!(m.contains("duplicate")),
            other => panic!("expected remote error, got {other:?}"),
        }
    }

    #[test]
    fn crash_drops_requests_then_recovery_serves_journaled_data() {
        let (mut sim, rpc, server) = boot();
        call(
            &mut sim,
            &rpc,
            MongoRequest::InsertOne {
                coll: "jobs".into(),
                doc: obj! { "_id" => "precrash" },
            },
        );
        sim.run_until_idle();

        server.crash();
        let during = call(
            &mut sim,
            &rpc,
            MongoRequest::Count {
                coll: "jobs".into(),
                filter: Filter::True,
            },
        );
        sim.run_until_idle();
        assert_eq!(
            during.borrow().clone().unwrap(),
            Err(dlaas_net::RpcError::Timeout),
            "requests during the crash must time out"
        );

        let journal = server.journal();
        let _recovered = MongoServer::recover(rpc.clone(), journal, MongoTimings::default());
        let after = call(
            &mut sim,
            &rpc,
            MongoRequest::FindOne {
                coll: "jobs".into(),
                filter: Filter::eq("_id", "precrash"),
            },
        );
        sim.run_until_idle();
        let r = after.borrow().clone().unwrap().unwrap();
        match r {
            MongoResponse::Doc(Some(_)) => {}
            other => panic!("journaled insert lost across crash: {other:?}"),
        }
    }

    #[test]
    fn fail_writes_drops_mutations_but_serves_reads() {
        let (mut sim, rpc, server) = boot();
        call(
            &mut sim,
            &rpc,
            MongoRequest::InsertOne {
                coll: "jobs".into(),
                doc: obj! { "_id" => "j1" },
            },
        );
        sim.run_until_idle();

        server.set_fail_writes(true);
        assert!(server.failing_writes());
        let write = call(
            &mut sim,
            &rpc,
            MongoRequest::InsertOne {
                coll: "jobs".into(),
                doc: obj! { "_id" => "j2" },
            },
        );
        let read = call(
            &mut sim,
            &rpc,
            MongoRequest::FindOne {
                coll: "jobs".into(),
                filter: Filter::eq("_id", "j1"),
            },
        );
        sim.run_until_idle();
        assert_eq!(
            write.borrow().clone().unwrap(),
            Err(dlaas_net::RpcError::Timeout),
            "writes must time out while stalled"
        );
        assert!(
            matches!(
                read.borrow().clone().unwrap(),
                Ok(MongoResponse::Doc(Some(_)))
            ),
            "reads keep working while writes stall"
        );

        server.set_fail_writes(false);
        let after = call(
            &mut sim,
            &rpc,
            MongoRequest::InsertOne {
                coll: "jobs".into(),
                doc: obj! { "_id" => "j3" },
            },
        );
        sim.run_until_idle();
        assert!(after.borrow().clone().unwrap().is_ok());
    }

    #[test]
    fn find_changed_feeds_watermarked_changes_over_rpc() {
        let (mut sim, rpc, server) = boot();
        for i in 0..3 {
            call(
                &mut sim,
                &rpc,
                MongoRequest::InsertOne {
                    coll: "jobs".into(),
                    doc: obj! { "_id" => format!("j{i}") },
                },
            );
        }
        sim.run_until_idle();

        let first = call(
            &mut sim,
            &rpc,
            MongoRequest::FindChanged {
                coll: "jobs".into(),
                since: 0,
            },
        );
        sim.run_until_idle();
        let hw = match first.borrow().clone().unwrap().unwrap() {
            MongoResponse::Changed {
                docs,
                gone,
                high_water,
            } => {
                assert_eq!(docs.len(), 3);
                assert!(gone.is_empty());
                high_water
            }
            other => panic!("unexpected: {other:?}"),
        };

        call(
            &mut sim,
            &rpc,
            MongoRequest::DeleteOne {
                coll: "jobs".into(),
                filter: Filter::eq("_id", "j1"),
            },
        );
        sim.run_until_idle();

        // The feed is a read: it keeps working while writes stall.
        server.set_fail_writes(true);
        let second = call(
            &mut sim,
            &rpc,
            MongoRequest::FindChanged {
                coll: "jobs".into(),
                since: hw,
            },
        );
        sim.run_until_idle();
        match second.borrow().clone().unwrap().unwrap() {
            MongoResponse::Changed {
                docs,
                gone,
                high_water,
            } => {
                assert!(docs.is_empty());
                assert_eq!(gone, vec!["j1".to_owned()]);
                assert_eq!(high_water, hw + 1);
            }
            other => panic!("unexpected: {other:?}"),
        };
    }

    #[test]
    fn write_latency_exceeds_read_latency() {
        let (mut sim, rpc, _server) = boot();
        call(
            &mut sim,
            &rpc,
            MongoRequest::InsertOne {
                coll: "c".into(),
                doc: obj! {"a" => 1},
            },
        );
        sim.run_until_idle();
        let t_write = sim.now();
        call(
            &mut sim,
            &rpc,
            MongoRequest::Count {
                coll: "c".into(),
                filter: Filter::True,
            },
        );
        sim.run_until_idle();
        let t_read = sim.now() - t_write;
        assert!(t_read < t_write.duration_since(dlaas_sim::SimTime::ZERO));
    }
}
