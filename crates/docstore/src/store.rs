//! The journaled document store.
//!
//! DLaaS stores all job metadata in MongoDB and writes it **before**
//! acknowledging a submission, which is what makes accepted jobs durable
//! (paper §III-c). [`DocStore`] reproduces the property that matters: every
//! acknowledged mutation is on the journal ("disk"), and a crash loses only
//! volatile state — [`DocStore::recover`] rebuilds the collections by
//! replaying the journal.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use crate::query::{Filter, Update};
use crate::value::Value;

/// Errors reported by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Insert with an `_id` that already exists in the collection.
    DuplicateId(String),
    /// Document root must be an object.
    NotAnObject,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::DuplicateId(id) => write!(f, "duplicate _id: {id}"),
            StoreError::NotAnObject => write!(f, "document root must be an object"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One durable journal record (the "disk" write-ahead log).
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// Document inserted into a collection.
    Insert {
        /// Collection name.
        coll: String,
        /// Document id.
        id: String,
        /// Full document.
        doc: Value,
    },
    /// Document replaced (after-image).
    Replace {
        /// Collection name.
        coll: String,
        /// Document id.
        id: String,
        /// Full document after the update.
        doc: Value,
    },
    /// Document removed.
    Remove {
        /// Collection name.
        coll: String,
        /// Document id.
        id: String,
    },
    /// Secondary index created.
    Index {
        /// Collection name.
        coll: String,
        /// Indexed dotted path.
        path: String,
    },
}

/// The durable journal, shared between store incarnations (it *is* the
/// disk). Cloning shares the underlying log.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    ops: Rc<RefCell<Vec<JournalOp>>>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record (a synchronous, durable write).
    pub fn append(&self, op: JournalOp) {
        self.ops.borrow_mut().push(op);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.ops.borrow().len()
    }

    /// `true` when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.ops.borrow().is_empty()
    }

    /// Snapshot of all records (test/debug aid).
    pub fn snapshot(&self) -> Vec<JournalOp> {
        self.ops.borrow().clone()
    }
}

#[derive(Debug, Default)]
struct Collection {
    docs: BTreeMap<String, Value>,
    /// path → (value → ids); consulted for `Eq`-pinned filters.
    indexes: BTreeMap<String, BTreeMap<String, BTreeSet<String>>>,
    /// Monotonic per-collection change counter, bumped once per journaled
    /// mutation (insert, effective update, delete). Journal replay bumps
    /// through the same path, so sequence numbers — and therefore any
    /// watcher's watermark — survive crash recovery unchanged.
    change_seq: u64,
    /// id → sequence number of its latest change.
    changed_at: BTreeMap<String, u64>,
    /// sequence number → id; at most one entry per id (re-touching a
    /// document moves it to the tail), so a watcher reading the range
    /// above its watermark sees each changed document exactly once.
    by_seq: BTreeMap<u64, String>,
}

impl Collection {
    fn index_key(v: &Value) -> String {
        v.to_string()
    }

    /// Records that `id` changed (was inserted, replaced, or removed),
    /// moving it to the tail of the change feed.
    fn note_change(&mut self, id: &str) {
        self.change_seq += 1;
        if let Some(old) = self.changed_at.insert(id.to_owned(), self.change_seq) {
            self.by_seq.remove(&old);
        }
        self.by_seq.insert(self.change_seq, id.to_owned());
    }

    fn add_to_indexes(&mut self, id: &str, doc: &Value) {
        for (path, idx) in &mut self.indexes {
            if let Some(v) = doc.path(path) {
                idx.entry(Self::index_key(v))
                    .or_default()
                    .insert(id.to_owned());
            }
        }
    }

    fn remove_from_indexes(&mut self, id: &str, doc: &Value) {
        for (path, idx) in &mut self.indexes {
            if let Some(v) = doc.path(path) {
                if let Some(set) = idx.get_mut(&Self::index_key(v)) {
                    set.remove(id);
                    if set.is_empty() {
                        idx.remove(&Self::index_key(v));
                    }
                }
            }
        }
    }

    /// Ids of candidate documents for `filter`, using the primary key or
    /// an index when the filter pins one, otherwise all ids.
    fn candidates(&self, filter: &Filter) -> Vec<String> {
        // `_id` is the primary key: an exact pin needs no scan.
        if let Some(v) = filter.pinned_eq("_id") {
            return match v.as_str() {
                Some(id) if self.docs.contains_key(id) => vec![id.to_owned()],
                _ => Vec::new(),
            };
        }
        for path in self.indexes.keys() {
            if let Some(v) = filter.pinned_eq(path) {
                let idx = &self.indexes[path];
                return idx
                    .get(&Self::index_key(v))
                    .map(|set| {
                        let mut v: Vec<_> = set.iter().cloned().collect();
                        v.sort();
                        v
                    })
                    .unwrap_or_default();
            }
        }
        // `In`-pinned filters union the posting lists of every listed
        // value; the BTreeSet keeps candidate order identical to a scan.
        for path in self.indexes.keys() {
            if let Some(vs) = filter.pinned_in(path) {
                let idx = &self.indexes[path];
                let mut ids: BTreeSet<String> = BTreeSet::new();
                for v in vs {
                    if let Some(set) = idx.get(&Self::index_key(v)) {
                        ids.extend(set.iter().cloned());
                    }
                }
                return ids.into_iter().collect();
            }
        }
        self.docs.keys().cloned().collect()
    }
}

/// A journaled, single-primary document store (the MongoDB stand-in).
///
/// # Examples
///
/// ```
/// use dlaas_docstore::{obj, DocStore, Filter, Update};
///
/// let mut db = DocStore::new();
/// db.insert("jobs", obj! { "_id" => "job-1", "status" => "PENDING" })?;
/// db.update_one(
///     "jobs",
///     &Filter::eq("_id", "job-1"),
///     &Update::set("status", "PROCESSING"),
/// );
/// let doc = db.find_one("jobs", &Filter::eq("status", "PROCESSING")).unwrap();
/// assert_eq!(doc.path("_id").unwrap().as_str(), Some("job-1"));
/// # Ok::<(), dlaas_docstore::StoreError>(())
/// ```
#[derive(Debug)]
pub struct DocStore {
    collections: BTreeMap<String, Collection>,
    journal: Journal,
    next_auto_id: u64,
    /// Candidate documents examined by the most recent query-bearing
    /// operation — the per-query work count an RPC server can export.
    last_examined: std::cell::Cell<u64>,
}

impl Default for DocStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DocStore {
    /// An empty store with a fresh journal.
    pub fn new() -> Self {
        DocStore {
            collections: BTreeMap::new(),
            journal: Journal::new(),
            next_auto_id: 0,
            last_examined: std::cell::Cell::new(0),
        }
    }

    /// Rebuilds a store from an existing journal (crash recovery). The
    /// result is state-equal to the store that wrote the journal.
    pub fn recover(journal: Journal) -> Self {
        let mut store = DocStore {
            collections: BTreeMap::new(),
            journal: Journal::new(), // temporarily empty to avoid re-journaling
            next_auto_id: 0,
            last_examined: std::cell::Cell::new(0),
        };
        let ops = journal.snapshot();
        for op in &ops {
            match op {
                JournalOp::Insert { coll, id, doc } | JournalOp::Replace { coll, id, doc } => {
                    let c = store.collections.entry(coll.clone()).or_default();
                    if let Some(old) = c.docs.get(id).cloned() {
                        c.remove_from_indexes(id, &old);
                    }
                    c.docs.insert(id.clone(), doc.clone());
                    let doc = doc.clone();
                    c.add_to_indexes(id, &doc);
                    c.note_change(id);
                    // Track auto-id high-water mark.
                    if let Some(n) = id.strip_prefix("auto-").and_then(|s| s.parse::<u64>().ok()) {
                        store.next_auto_id = store.next_auto_id.max(n + 1);
                    }
                }
                JournalOp::Remove { coll, id } => {
                    if let Some(c) = store.collections.get_mut(coll) {
                        if let Some(old) = c.docs.remove(id) {
                            c.remove_from_indexes(id, &old);
                            c.note_change(id);
                        }
                    }
                }
                JournalOp::Index { coll, path } => {
                    store.build_index(coll, path);
                }
            }
        }
        store.journal = journal;
        store
    }

    /// The journal (share it with a future incarnation to recover).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Creates a secondary index on `path` (idempotent, journaled).
    pub fn create_index(&mut self, coll: &str, path: &str) {
        if self
            .collections
            .get(coll)
            .is_some_and(|c| c.indexes.contains_key(path))
        {
            return;
        }
        self.build_index(coll, path);
        self.journal.append(JournalOp::Index {
            coll: coll.to_owned(),
            path: path.to_owned(),
        });
    }

    fn build_index(&mut self, coll: &str, path: &str) {
        let c = self.collections.entry(coll.to_owned()).or_default();
        let mut idx: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (id, doc) in &c.docs {
            if let Some(v) = doc.path(path) {
                idx.entry(Collection::index_key(v))
                    .or_default()
                    .insert(id.clone());
            }
        }
        c.indexes.insert(path.to_owned(), idx);
    }

    /// Inserts a document, journaling before returning (write concern:
    /// journaled). Uses the document's `"_id"` string field or assigns
    /// `auto-N`. Returns the id.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotAnObject`] if `doc` is not an object,
    /// [`StoreError::DuplicateId`] if the id already exists.
    pub fn insert(&mut self, coll: &str, mut doc: Value) -> Result<String, StoreError> {
        let Value::Obj(obj) = &mut doc else {
            return Err(StoreError::NotAnObject);
        };
        let id = match obj.get("_id").and_then(Value::as_str) {
            Some(s) => s.to_owned(),
            None => {
                let id = format!("auto-{}", self.next_auto_id);
                self.next_auto_id += 1;
                obj.insert("_id".into(), Value::from(id.clone()));
                id
            }
        };
        let c = self.collections.entry(coll.to_owned()).or_default();
        if c.docs.contains_key(&id) {
            return Err(StoreError::DuplicateId(id));
        }
        // Journal first: the write is durable before it is acknowledged.
        self.journal.append(JournalOp::Insert {
            coll: coll.to_owned(),
            id: id.clone(),
            doc: doc.clone(),
        });
        // dlaas-lint: allow(panic-reachable): the entry was created by the get-or-create at the top of insert, and the journal append between the two does not touch collections
        let c = self.collections.get_mut(coll).expect("just created");
        c.docs.insert(id.clone(), doc.clone());
        c.add_to_indexes(&id, &doc);
        c.note_change(&id);
        Ok(id)
    }

    /// All documents matching `filter`, in id order.
    pub fn find(&self, coll: &str, filter: &Filter) -> Vec<Value> {
        let Some(c) = self.collections.get(coll) else {
            self.last_examined.set(0);
            return Vec::new();
        };
        let cands = c.candidates(filter);
        self.last_examined.set(cands.len() as u64);
        cands
            .into_iter()
            .filter_map(|id| c.docs.get(&id))
            .filter(|d| filter.matches(d))
            .cloned()
            .collect()
    }

    /// Like [`DocStore::find`], with sorting and a result cap. Documents
    /// missing the sort path order before all present values (like
    /// MongoDB's null-first ascending order); ties fall back to id order.
    pub fn find_sorted(
        &self,
        coll: &str,
        filter: &Filter,
        sort_path: &str,
        descending: bool,
        limit: usize,
    ) -> Vec<Value> {
        let mut docs = self.find(coll, filter);
        docs.sort_by(|a, b| {
            let ord = match (a.path(sort_path), b.path(sort_path)) {
                (None, None) => std::cmp::Ordering::Equal,
                (None, Some(_)) => std::cmp::Ordering::Less,
                (Some(_), None) => std::cmp::Ordering::Greater,
                (Some(x), Some(y)) => x.cmp_order(y),
            };
            let ord = if descending { ord.reverse() } else { ord };
            ord.then_with(|| {
                let ia = a.path("_id").and_then(Value::as_str).unwrap_or("");
                let ib = b.path("_id").and_then(Value::as_str).unwrap_or("");
                ia.cmp(ib)
            })
        });
        docs.truncate(limit);
        docs
    }

    /// First matching document in id order, if any.
    pub fn find_one(&self, coll: &str, filter: &Filter) -> Option<Value> {
        let Some(c) = self.collections.get(coll) else {
            self.last_examined.set(0);
            return None;
        };
        let cands = c.candidates(filter);
        self.last_examined.set(cands.len() as u64);
        cands
            .into_iter()
            .filter_map(|id| c.docs.get(&id))
            .find(|d| filter.matches(d))
            .cloned()
    }

    /// Candidate documents examined by the most recent `find*`, `count`,
    /// `update_*` or `delete_*` call. With a usable index this is the
    /// posting-list size; without one it is the collection size — the
    /// number the scale soak tracks to prove queries stay sub-linear.
    pub fn last_examined(&self) -> u64 {
        self.last_examined.get()
    }

    /// Number of matching documents.
    pub fn count(&self, coll: &str, filter: &Filter) -> usize {
        self.find(coll, filter).len()
    }

    /// Applies `update` to the first matching document. Returns `true` if a
    /// document was updated.
    pub fn update_one(&mut self, coll: &str, filter: &Filter, update: &Update) -> bool {
        self.update_impl(coll, filter, update, true) == 1
    }

    /// Applies `update` to every matching document. Returns the count.
    pub fn update_many(&mut self, coll: &str, filter: &Filter, update: &Update) -> usize {
        self.update_impl(coll, filter, update, false)
    }

    fn update_impl(&mut self, coll: &str, filter: &Filter, update: &Update, one: bool) -> usize {
        let Some(c) = self.collections.get_mut(coll) else {
            self.last_examined.set(0);
            return 0;
        };
        let cands = c.candidates(filter);
        self.last_examined.set(cands.len() as u64);
        let ids: Vec<String> = cands
            .into_iter()
            .filter(|id| c.docs.get(id).is_some_and(|d| filter.matches(d)))
            .collect();
        let mut n = 0;
        for id in ids {
            // dlaas-lint: allow(panic-reachable): `ids` was filtered to present docs from this same collection borrow a few lines up; nothing between the scan and this loop mutates c.docs
            let old = c.docs.get(&id).expect("listed above").clone();
            let mut new = old.clone();
            update.apply(&mut new);
            if new != old {
                c.remove_from_indexes(&id, &old);
                c.docs.insert(id.clone(), new.clone());
                c.add_to_indexes(&id, &new);
                c.note_change(&id);
                self.journal.append(JournalOp::Replace {
                    coll: coll.to_owned(),
                    id: id.clone(),
                    doc: new,
                });
            }
            n += 1;
            if one {
                break;
            }
        }
        n
    }

    /// Removes the first matching document. Returns `true` if one was
    /// removed.
    pub fn delete_one(&mut self, coll: &str, filter: &Filter) -> bool {
        self.delete_impl(coll, filter, true) == 1
    }

    /// Removes every matching document. Returns the count.
    pub fn delete_many(&mut self, coll: &str, filter: &Filter) -> usize {
        self.delete_impl(coll, filter, false)
    }

    fn delete_impl(&mut self, coll: &str, filter: &Filter, one: bool) -> usize {
        let Some(c) = self.collections.get_mut(coll) else {
            self.last_examined.set(0);
            return 0;
        };
        let cands = c.candidates(filter);
        self.last_examined.set(cands.len() as u64);
        let ids: Vec<String> = cands
            .into_iter()
            .filter(|id| c.docs.get(id).is_some_and(|d| filter.matches(d)))
            .collect();
        let mut n = 0;
        for id in ids {
            // dlaas-lint: allow(panic-reachable): `ids` was filtered to present docs from this same collection borrow a few lines up, and each id is removed exactly once
            let old = c.docs.remove(&id).expect("listed above");
            c.remove_from_indexes(&id, &old);
            c.note_change(&id);
            self.journal.append(JournalOp::Remove {
                coll: coll.to_owned(),
                id: id.clone(),
            });
            n += 1;
            if one {
                break;
            }
        }
        n
    }

    /// The collection's change feed above `since`: full documents that
    /// exist now (`docs`, in change order), ids whose latest change was a
    /// removal (`gone`), and the current high-water sequence number to
    /// use as the next `since`.
    ///
    /// A document touched several times appears once, at its latest
    /// position, so the work (and [`DocStore::last_examined`]) is
    /// proportional to the number of documents changed since the
    /// watermark — not the collection size. `since == 0` returns every
    /// live document plus every removal tombstone: a watcher that lost
    /// its watermark (e.g. an LCM restart) falls back to a full rescan.
    pub fn changed_since(&self, coll: &str, since: u64) -> (Vec<Value>, Vec<String>, u64) {
        let Some(c) = self.collections.get(coll) else {
            self.last_examined.set(0);
            return (Vec::new(), Vec::new(), 0);
        };
        let mut docs = Vec::new();
        let mut gone = Vec::new();
        let mut examined = 0u64;
        for id in c
            .by_seq
            .range((std::ops::Bound::Excluded(since), std::ops::Bound::Unbounded))
            .map(|(_, id)| id)
        {
            examined += 1;
            match c.docs.get(id) {
                Some(d) => docs.push(d.clone()),
                None => gone.push(id.clone()),
            }
        }
        self.last_examined.set(examined);
        (docs, gone, c.change_seq)
    }

    /// Names of all collections that have ever held a document.
    pub fn collection_names(&self) -> Vec<String> {
        let mut v: Vec<_> = self.collections.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;

    fn job(id: &str, status: &str, learners: i64) -> Value {
        obj! { "_id" => id, "status" => status, "learners" => learners }
    }

    #[test]
    fn insert_find_roundtrip() {
        let mut db = DocStore::new();
        db.insert("jobs", job("a", "PENDING", 1)).unwrap();
        db.insert("jobs", job("b", "PROCESSING", 4)).unwrap();
        assert_eq!(db.count("jobs", &Filter::True), 2);
        let found = db
            .find_one("jobs", &Filter::eq("status", "PROCESSING"))
            .unwrap();
        assert_eq!(found.path("_id").unwrap().as_str(), Some("b"));
        assert!(db.find("nosuch", &Filter::True).is_empty());
        assert!(db
            .find_one("jobs", &Filter::eq("status", "FAILED"))
            .is_none());
    }

    #[test]
    fn duplicate_id_rejected_and_autoid_assigned() {
        let mut db = DocStore::new();
        db.insert("jobs", job("a", "PENDING", 1)).unwrap();
        assert_eq!(
            db.insert("jobs", job("a", "PENDING", 1)),
            Err(StoreError::DuplicateId("a".into()))
        );
        assert_eq!(
            db.insert("jobs", Value::from(3i64)),
            Err(StoreError::NotAnObject)
        );
        let id1 = db.insert("jobs", obj! {"x" => 1}).unwrap();
        let id2 = db.insert("jobs", obj! {"x" => 2}).unwrap();
        assert_eq!(id1, "auto-0");
        assert_eq!(id2, "auto-1");
    }

    #[test]
    fn update_one_and_many() {
        let mut db = DocStore::new();
        for i in 0..5 {
            db.insert("jobs", job(&format!("j{i}"), "PENDING", i))
                .unwrap();
        }
        assert!(db.update_one(
            "jobs",
            &Filter::eq("_id", "j2"),
            &Update::set("status", "PROCESSING"),
        ));
        assert_eq!(db.count("jobs", &Filter::eq("status", "PROCESSING")), 1);

        let n = db.update_many(
            "jobs",
            &Filter::eq("status", "PENDING"),
            &Update::set("status", "QUEUED"),
        );
        assert_eq!(n, 4);
        assert_eq!(db.count("jobs", &Filter::eq("status", "QUEUED")), 4);
        assert!(!db.update_one("jobs", &Filter::eq("_id", "ghost"), &Update::inc("x", 1)));
    }

    #[test]
    fn delete_one_and_many() {
        let mut db = DocStore::new();
        for i in 0..5 {
            db.insert("jobs", job(&format!("j{i}"), "DONE", i)).unwrap();
        }
        assert!(db.delete_one("jobs", &Filter::eq("_id", "j0")));
        assert_eq!(db.delete_many("jobs", &Filter::gt("learners", 2)), 2);
        assert_eq!(db.count("jobs", &Filter::True), 2);
        assert_eq!(db.delete_many("ghost", &Filter::True), 0);
    }

    #[test]
    fn journal_then_ack_ordering() {
        let mut db = DocStore::new();
        db.insert("jobs", job("a", "PENDING", 1)).unwrap();
        // The journal already contains the insert by the time insert() returned.
        assert_eq!(db.journal().len(), 1);
        db.update_one("jobs", &Filter::True, &Update::set("status", "X"));
        assert_eq!(db.journal().len(), 2);
        // No-op update journals nothing.
        db.update_one("jobs", &Filter::True, &Update::set("status", "X"));
        assert_eq!(db.journal().len(), 2);
    }

    #[test]
    fn crash_recovery_replays_journal_exactly() {
        let mut db = DocStore::new();
        db.create_index("jobs", "status");
        for i in 0..10 {
            db.insert("jobs", job(&format!("j{i}"), "PENDING", i))
                .unwrap();
        }
        db.update_many(
            "jobs",
            &Filter::lt("learners", 3),
            &Update::set("status", "PROCESSING"),
        );
        db.delete_one("jobs", &Filter::eq("_id", "j9"));
        let auto = db.insert("jobs", obj! {"k" => 1}).unwrap();

        // "Crash": drop the store, keep the journal (the disk).
        let journal = db.journal().clone();
        drop(db);
        let recovered = DocStore::recover(journal);

        assert_eq!(recovered.count("jobs", &Filter::True), 10);
        assert_eq!(
            recovered.count("jobs", &Filter::eq("status", "PROCESSING")),
            3
        );
        assert!(recovered
            .find_one("jobs", &Filter::eq("_id", "j9"))
            .is_none());
        assert!(recovered
            .find_one("jobs", &Filter::eq("_id", auto))
            .is_some());

        // Auto-id continues past the high-water mark after recovery.
        let mut recovered = recovered;
        let next = recovered.insert("jobs", obj! {"k" => 2}).unwrap();
        assert_eq!(next, "auto-1");
    }

    #[test]
    fn indexed_queries_match_scan_results() {
        let mut db = DocStore::new();
        db.create_index("jobs", "status");
        for i in 0..20 {
            let status = if i % 3 == 0 { "A" } else { "B" };
            db.insert("jobs", job(&format!("j{i:02}"), status, i))
                .unwrap();
        }
        let by_index = db.find("jobs", &Filter::eq("status", "A"));
        assert_eq!(by_index.len(), 7);
        // Compound filter still narrows through the index.
        let compound = db.find(
            "jobs",
            &Filter::and(vec![Filter::eq("status", "A"), Filter::gt("learners", 10)]),
        );
        assert_eq!(compound.len(), 3);
        // Index stays correct across updates and deletes.
        db.update_many(
            "jobs",
            &Filter::eq("status", "A"),
            &Update::set("status", "C"),
        );
        assert!(db.find("jobs", &Filter::eq("status", "A")).is_empty());
        assert_eq!(db.find("jobs", &Filter::eq("status", "C")).len(), 7);
        db.delete_many("jobs", &Filter::eq("status", "C"));
        assert!(db.find("jobs", &Filter::eq("status", "C")).is_empty());
    }

    #[test]
    fn in_filters_route_through_index_and_match_scan() {
        let mut indexed = DocStore::new();
        indexed.create_index("jobs", "status");
        let mut plain = DocStore::new();
        for i in 0..30 {
            let status = ["PENDING", "DEPLOYING", "PROCESSING", "COMPLETED"][i % 4];
            indexed
                .insert("jobs", job(&format!("j{i:02}"), status, i as i64))
                .unwrap();
            plain
                .insert("jobs", job(&format!("j{i:02}"), status, i as i64))
                .unwrap();
        }
        let active = Filter::In(
            "status".into(),
            vec!["PENDING".into(), "DEPLOYING".into(), "PROCESSING".into()],
        );
        let via_index = indexed.find("jobs", &active);
        let via_scan = plain.find("jobs", &active);
        assert_eq!(
            via_index, via_scan,
            "index must not change results or order"
        );
        // The indexed store examined only the union of the posting lists.
        assert_eq!(indexed.last_examined(), via_index.len() as u64);
        assert_eq!(plain.last_examined(), 30);

        // `In` nested under `And` also routes through the index.
        let compound = Filter::and(vec![active.clone(), Filter::gt("learners", 10)]);
        let got = indexed.find("jobs", &compound);
        assert_eq!(got, plain.find("jobs", &compound));
        assert!(indexed.last_examined() < 30);

        // Updates through an In-pinned filter keep the index consistent.
        let n = indexed.update_many("jobs", &active, &Update::set("status", "KILLED"));
        assert_eq!(n, via_index.len());
        assert!(indexed.find("jobs", &active).is_empty());
        assert_eq!(
            indexed.find("jobs", &Filter::eq("status", "KILLED")).len(),
            n
        );
    }

    #[test]
    fn last_examined_tracks_candidate_set_size() {
        let mut db = DocStore::new();
        db.create_index("jobs", "status");
        for i in 0..8 {
            let status = if i < 2 { "A" } else { "B" };
            db.insert("jobs", job(&format!("j{i}"), status, i)).unwrap();
        }
        db.find("jobs", &Filter::True);
        assert_eq!(db.last_examined(), 8);
        db.find("jobs", &Filter::eq("status", "A"));
        assert_eq!(db.last_examined(), 2);
        db.find_one("jobs", &Filter::eq("_id", "j5"));
        assert_eq!(db.last_examined(), 1);
        db.find("ghost", &Filter::True);
        assert_eq!(db.last_examined(), 0);
        db.delete_many("jobs", &Filter::eq("status", "A"));
        assert_eq!(db.last_examined(), 2);
    }

    #[test]
    fn create_index_is_idempotent_and_survives_recovery() {
        let mut db = DocStore::new();
        db.insert("jobs", job("a", "X", 1)).unwrap();
        db.create_index("jobs", "status");
        db.create_index("jobs", "status");
        let journal_len = db.journal().len();
        let recovered = DocStore::recover(db.journal().clone());
        assert_eq!(recovered.journal().len(), journal_len);
        assert_eq!(recovered.find("jobs", &Filter::eq("status", "X")).len(), 1);
    }

    #[test]
    fn find_sorted_orders_limits_and_handles_missing_fields() {
        let mut db = DocStore::new();
        db.insert("jobs", obj! {"_id" => "a", "n" => 3}).unwrap();
        db.insert("jobs", obj! {"_id" => "b", "n" => 1}).unwrap();
        db.insert("jobs", obj! {"_id" => "c", "n" => 2}).unwrap();
        db.insert("jobs", obj! {"_id" => "d"}).unwrap(); // no "n"

        let asc = db.find_sorted("jobs", &Filter::True, "n", false, 10);
        let ids: Vec<&str> = asc
            .iter()
            .map(|d| d.path("_id").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(ids, vec!["d", "b", "c", "a"], "nulls first ascending");

        let desc = db.find_sorted("jobs", &Filter::True, "n", true, 2);
        let ids: Vec<&str> = desc
            .iter()
            .map(|d| d.path("_id").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(ids, vec!["a", "c"], "descending + limit");

        // Ties fall back to id order deterministically.
        db.insert("jobs", obj! {"_id" => "e", "n" => 2}).unwrap();
        let tied = db.find_sorted("jobs", &Filter::gt("n", 1), "n", false, 10);
        let ids: Vec<&str> = tied
            .iter()
            .map(|d| d.path("_id").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(ids, vec!["c", "e", "a"]);
    }

    #[test]
    fn changed_since_reports_each_touched_doc_once() {
        let mut db = DocStore::new();
        for i in 0..4 {
            db.insert("jobs", job(&format!("j{i}"), "PENDING", i))
                .unwrap();
        }
        let (docs, gone, hw) = db.changed_since("jobs", 0);
        assert_eq!(docs.len(), 4);
        assert!(gone.is_empty());
        assert_eq!(hw, 4);
        assert_eq!(db.last_examined(), 4);

        // Nothing changed: the feed above the watermark is empty and
        // examined zero documents — the sub-linear property the LCM
        // sweep depends on.
        let (docs, gone, hw2) = db.changed_since("jobs", hw);
        assert!(docs.is_empty() && gone.is_empty());
        assert_eq!(hw2, hw);
        assert_eq!(db.last_examined(), 0);

        // A doc updated twice surfaces once, at its latest position;
        // a no-op update does not re-surface it.
        db.update_one(
            "jobs",
            &Filter::eq("_id", "j1"),
            &Update::set("status", "A"),
        );
        db.update_one(
            "jobs",
            &Filter::eq("_id", "j1"),
            &Update::set("status", "B"),
        );
        db.update_one(
            "jobs",
            &Filter::eq("_id", "j0"),
            &Update::set("status", "PENDING"),
        );
        let (docs, gone, hw3) = db.changed_since("jobs", hw);
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].path("status").unwrap().as_str(), Some("B"));
        assert!(gone.is_empty());
        assert_eq!(hw3, hw + 2);

        // Deletions surface as tombstoned ids.
        db.delete_one("jobs", &Filter::eq("_id", "j2"));
        let (docs, gone, _) = db.changed_since("jobs", hw3);
        assert!(docs.is_empty());
        assert_eq!(gone, vec!["j2".to_owned()]);

        // Unknown collections have an empty feed.
        assert_eq!(db.changed_since("ghost", 0), (Vec::new(), Vec::new(), 0));
    }

    #[test]
    fn change_feed_watermarks_survive_crash_recovery() {
        let mut db = DocStore::new();
        for i in 0..5 {
            db.insert("jobs", job(&format!("j{i}"), "PENDING", i))
                .unwrap();
        }
        db.update_one(
            "jobs",
            &Filter::eq("_id", "j3"),
            &Update::set("status", "X"),
        );
        db.delete_one("jobs", &Filter::eq("_id", "j0"));
        let (pre_docs, pre_gone, pre_hw) = db.changed_since("jobs", 2);

        // Every journaled mutation bumps the feed exactly once, so replay
        // reconstructs identical sequence numbers and a watcher's
        // watermark stays valid across the crash.
        let recovered = DocStore::recover(db.journal().clone());
        let (docs, gone, hw) = recovered.changed_since("jobs", 2);
        assert_eq!(docs, pre_docs);
        assert_eq!(gone, pre_gone);
        assert_eq!(hw, pre_hw);
    }

    #[test]
    fn collection_names_sorted() {
        let mut db = DocStore::new();
        db.insert("zeta", obj! {"a" => 1}).unwrap();
        db.insert("alpha", obj! {"a" => 1}).unwrap();
        assert_eq!(db.collection_names(), vec!["alpha", "zeta"]);
    }
}
