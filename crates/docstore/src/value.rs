//! Dynamically-typed document values (a BSON/JSON-like model).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A dynamically typed value stored in a document.
///
/// # Examples
///
/// ```
/// use dlaas_docstore::{obj, Value};
///
/// let v = obj! {
///     "name" => "train-1",
///     "learners" => 4,
///     "gpu" => obj! { "kind" => "K80", "per_learner" => 2 },
/// };
/// assert_eq!(v.path("gpu.kind").and_then(Value::as_str), Some("K80"));
/// assert_eq!(v.path("learners").and_then(Value::as_i64), Some(4));
/// assert_eq!(v.path("missing"), None);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
#[derive(Default)]
pub enum Value {
    /// Absent/null.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered array.
    Arr(Vec<Value>),
    /// String-keyed map with deterministic (sorted) iteration order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// `true` if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer, if this is an `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            _ => None,
        }
    }

    /// The float, if numeric (integers convert losslessly).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The map, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Navigates a dotted path (`"a.b.c"`) through nested objects.
    pub fn path(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.as_obj()?.get(seg)?;
        }
        Some(cur)
    }

    /// Mutable navigation of a dotted path, creating intermediate objects.
    /// Returns `None` when a non-object intermediate blocks the path.
    pub fn path_mut_or_create(&mut self, path: &str) -> Option<&mut Value> {
        let mut cur = self;
        for seg in path.split('.') {
            match cur {
                Value::Obj(m) => {
                    cur = m.entry(seg.to_owned()).or_insert(Value::Null);
                    if cur.is_null() {
                        *cur = Value::Obj(BTreeMap::new());
                        // Re-created as object; but if this is the final
                        // segment the caller will overwrite it anyway.
                    }
                }
                _ => return None,
            }
        }
        Some(cur)
    }

    /// Total ordering used by comparisons and indexes. Numeric types
    /// compare by value; mixed non-numeric types compare by type rank.
    pub fn cmp_order(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        use Value::*;
        match (self, other) {
            (Null, Null) => Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (I64(a), I64(b)) => a.cmp(b),
            (F64(a), F64(b)) => a.partial_cmp(b).unwrap_or(Equal),
            (I64(a), F64(b)) => (*a as f64).partial_cmp(b).unwrap_or(Equal),
            (F64(a), I64(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Equal),
            (Str(a), Str(b)) => a.cmp(b),
            (Arr(a), Arr(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.cmp_order(y);
                    if o != Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Obj(a), Obj(b)) => {
                let mut ai = a.iter();
                let mut bi = b.iter();
                loop {
                    match (ai.next(), bi.next()) {
                        (None, None) => return Equal,
                        (None, Some(_)) => return Less,
                        (Some(_), None) => return Greater,
                        (Some((ka, va)), Some((kb, vb))) => {
                            let o = ka.cmp(kb).then_with(|| va.cmp_order(vb));
                            if o != Equal {
                                return o;
                            }
                        }
                    }
                }
            }
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::I64(_) | Value::F64(_) => 2,
            Value::Str(_) => 3,
            Value::Arr(_) => 4,
            Value::Obj(_) => 5,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match serde_json::to_string(self) {
            Ok(s) => f.write_str(&s),
            Err(_) => f.write_str("<unserializable>"),
        }
    }
}


impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::I64(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::I64(i as i64)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::I64(i as i64)
    }
}
impl From<u64> for Value {
    fn from(i: u64) -> Self {
        Value::I64(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::I64(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::F64(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

/// Builds a [`Value::Obj`] from `"key" => value` pairs.
///
/// # Examples
///
/// ```
/// use dlaas_docstore::obj;
///
/// let doc = obj! { "a" => 1, "b" => "two" };
/// assert_eq!(doc.path("b").unwrap().as_str(), Some("two"));
/// ```
#[macro_export]
macro_rules! obj {
    () => { $crate::Value::Obj(std::collections::BTreeMap::new()) };
    ( $( $k:expr => $v:expr ),+ $(,)? ) => {{
        let mut m = std::collections::BTreeMap::new();
        $( m.insert(String::from($k), $crate::Value::from($v)); )+
        $crate::Value::Obj(m)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(3i64).as_i64(), Some(3));
        assert_eq!(Value::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(vec![1i64, 2]).as_arr().unwrap().len(), 2);
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
        assert!(obj! {}.as_obj().unwrap().is_empty());
    }

    #[test]
    fn path_navigation() {
        let v = obj! { "a" => obj!{ "b" => obj!{ "c" => 7 } } };
        assert_eq!(v.path("a.b.c").unwrap().as_i64(), Some(7));
        assert!(v.path("a.x").is_none());
        assert!(v.path("a.b.c.d").is_none());
    }

    #[test]
    fn path_mut_creates_intermediates() {
        let mut v = obj! {};
        *v.path_mut_or_create("x.y").unwrap() = Value::from(5i64);
        assert_eq!(v.path("x.y").unwrap().as_i64(), Some(5));
        // A scalar blocks deeper creation.
        let mut v = obj! { "s" => 1 };
        assert!(v.path_mut_or_create("s.deep").is_none());
    }

    #[test]
    fn ordering_numeric_cross_type() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::from(1i64).cmp_order(&Value::from(1.0)), Equal);
        assert_eq!(Value::from(1i64).cmp_order(&Value::from(2.0)), Less);
        assert_eq!(Value::from("b").cmp_order(&Value::from("a")), Greater);
        assert_eq!(
            Value::from(vec![1i64, 2]).cmp_order(&Value::from(vec![1i64, 2, 3])),
            Less
        );
        assert_eq!(Value::Null.cmp_order(&Value::from(false)), Less);
    }

    #[test]
    fn serde_roundtrip() {
        let v = obj! { "n" => 1, "s" => "x", "a" => vec![1i64,2], "o" => obj!{"k" => true} };
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn display_is_json() {
        assert_eq!(Value::from(5i64).to_string(), "5");
        assert_eq!(obj! {"a" => 1}.to_string(), r#"{"a":1}"#);
    }
}
