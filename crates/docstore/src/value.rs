//! Dynamically-typed document values (a BSON/JSON-like model).

use std::collections::BTreeMap;
use std::fmt;

/// A dynamically typed value stored in a document.
///
/// # Examples
///
/// ```
/// use dlaas_docstore::{obj, Value};
///
/// let v = obj! {
///     "name" => "train-1",
///     "learners" => 4,
///     "gpu" => obj! { "kind" => "K80", "per_learner" => 2 },
/// };
/// assert_eq!(v.path("gpu.kind").and_then(Value::as_str), Some("K80"));
/// assert_eq!(v.path("learners").and_then(Value::as_i64), Some(4));
/// assert_eq!(v.path("missing"), None);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// Absent/null.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered array.
    Arr(Vec<Value>),
    /// String-keyed map with deterministic (sorted) iteration order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// `true` if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer, if this is an `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            _ => None,
        }
    }

    /// The float, if numeric (integers convert losslessly).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The map, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Navigates a dotted path (`"a.b.c"`) through nested objects.
    pub fn path(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.as_obj()?.get(seg)?;
        }
        Some(cur)
    }

    /// Mutable navigation of a dotted path, creating intermediate objects.
    /// Returns `None` when a non-object intermediate blocks the path.
    pub fn path_mut_or_create(&mut self, path: &str) -> Option<&mut Value> {
        let mut cur = self;
        for seg in path.split('.') {
            match cur {
                Value::Obj(m) => {
                    cur = m.entry(seg.to_owned()).or_insert(Value::Null);
                    if cur.is_null() {
                        *cur = Value::Obj(BTreeMap::new());
                        // Re-created as object; but if this is the final
                        // segment the caller will overwrite it anyway.
                    }
                }
                _ => return None,
            }
        }
        Some(cur)
    }

    /// Total ordering used by comparisons and indexes. Numeric types
    /// compare by value; mixed non-numeric types compare by type rank.
    pub fn cmp_order(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        use Value::*;
        match (self, other) {
            (Null, Null) => Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (I64(a), I64(b)) => a.cmp(b),
            (F64(a), F64(b)) => a.partial_cmp(b).unwrap_or(Equal),
            (I64(a), F64(b)) => (*a as f64).partial_cmp(b).unwrap_or(Equal),
            (F64(a), I64(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Equal),
            (Str(a), Str(b)) => a.cmp(b),
            (Arr(a), Arr(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.cmp_order(y);
                    if o != Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Obj(a), Obj(b)) => {
                let mut ai = a.iter();
                let mut bi = b.iter();
                loop {
                    match (ai.next(), bi.next()) {
                        (None, None) => return Equal,
                        (None, Some(_)) => return Less,
                        (Some(_), None) => return Greater,
                        (Some((ka, va)), Some((kb, vb))) => {
                            let o = ka.cmp(kb).then_with(|| va.cmp_order(vb));
                            if o != Equal {
                                return o;
                            }
                        }
                    }
                }
            }
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::I64(_) | Value::F64(_) => 2,
            Value::Str(_) => 3,
            Value::Arr(_) => 4,
            Value::Obj(_) => 5,
        }
    }

    /// Serializes to compact JSON (deterministic: object keys are sorted).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::I64(i) => {
                out.push_str(&i.to_string());
            }
            Value::F64(f) => {
                if f.is_finite() {
                    let s = f.to_string();
                    out.push_str(&s);
                    // Keep floats distinguishable from integers on re-parse.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse_json(input: &str) -> Result<Value, JsonError> {
        let bytes = input.as_bytes();
        let mut p = JsonParser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`Value::parse_json`]: a message and byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("bad number"))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::I64(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::I64(i as i64)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::I64(i as i64)
    }
}
impl From<u64> for Value {
    fn from(i: u64) -> Self {
        Value::I64(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::I64(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::F64(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

/// Builds a [`Value::Obj`] from `"key" => value` pairs.
///
/// # Examples
///
/// ```
/// use dlaas_docstore::obj;
///
/// let doc = obj! { "a" => 1, "b" => "two" };
/// assert_eq!(doc.path("b").unwrap().as_str(), Some("two"));
/// ```
#[macro_export]
macro_rules! obj {
    () => { $crate::Value::Obj(std::collections::BTreeMap::new()) };
    ( $( $k:expr => $v:expr ),+ $(,)? ) => {{
        let mut m = std::collections::BTreeMap::new();
        $( m.insert(String::from($k), $crate::Value::from($v)); )+
        $crate::Value::Obj(m)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(3i64).as_i64(), Some(3));
        assert_eq!(Value::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(vec![1i64, 2]).as_arr().unwrap().len(), 2);
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
        assert!(obj! {}.as_obj().unwrap().is_empty());
    }

    #[test]
    fn path_navigation() {
        let v = obj! { "a" => obj!{ "b" => obj!{ "c" => 7 } } };
        assert_eq!(v.path("a.b.c").unwrap().as_i64(), Some(7));
        assert!(v.path("a.x").is_none());
        assert!(v.path("a.b.c.d").is_none());
    }

    #[test]
    fn path_mut_creates_intermediates() {
        let mut v = obj! {};
        *v.path_mut_or_create("x.y").unwrap() = Value::from(5i64);
        assert_eq!(v.path("x.y").unwrap().as_i64(), Some(5));
        // A scalar blocks deeper creation.
        let mut v = obj! { "s" => 1 };
        assert!(v.path_mut_or_create("s.deep").is_none());
    }

    #[test]
    fn ordering_numeric_cross_type() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::from(1i64).cmp_order(&Value::from(1.0)), Equal);
        assert_eq!(Value::from(1i64).cmp_order(&Value::from(2.0)), Less);
        assert_eq!(Value::from("b").cmp_order(&Value::from("a")), Greater);
        assert_eq!(
            Value::from(vec![1i64, 2]).cmp_order(&Value::from(vec![1i64, 2, 3])),
            Less
        );
        assert_eq!(Value::Null.cmp_order(&Value::from(false)), Less);
    }

    #[test]
    fn parse_json_never_panics_on_hostile_input() {
        // Regression: the string and number scanners used to `unwrap()`
        // mid-parse; every malformed input must come back as Err.
        for bad in [
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\u12\"",
            "-",
            "1e",
            "[1,",
            "{\"k\":}",
            "",
        ] {
            assert!(Value::parse_json(bad).is_err(), "accepted {bad:?}");
        }
        // Multi-byte UTF-8 goes through the char scanner, not a panic.
        let v = Value::parse_json("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
    }

    #[test]
    fn json_roundtrip() {
        let v = obj! { "n" => 1, "s" => "x", "a" => vec![1i64,2], "o" => obj!{"k" => true} };
        let json = v.to_json();
        let back = Value::parse_json(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn json_roundtrip_edge_cases() {
        let v = obj! {
            "neg" => -42i64,
            "float" => 2.5,
            "whole_float" => 3.0,
            "esc" => "a\"b\\c\nd\te",
            "unicode" => "héllo ☃",
            "null" => Value::Null,
            "empty_arr" => Value::Arr(vec![]),
            "empty_obj" => obj!{},
            "nested" => vec![vec![1i64], vec![2i64, 3]],
        };
        let back = Value::parse_json(&v.to_json()).unwrap();
        assert_eq!(v, back);
        // Whole floats stay floats.
        assert_eq!(back.path("whole_float"), Some(&Value::F64(3.0)));
        assert_eq!(back.path("neg"), Some(&Value::I64(-42)));
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(Value::parse_json("").is_err());
        assert!(Value::parse_json("{").is_err());
        assert!(Value::parse_json("[1,]").is_err());
        assert!(Value::parse_json("truex").is_err());
        assert!(Value::parse_json(r#"{"a":1} extra"#).is_err());
        assert!(Value::parse_json(r#""unterminated"#).is_err());
    }

    #[test]
    fn json_parse_accepts_whitespace_and_escapes() {
        let v = Value::parse_json(" { \"a\" : [ 1 , 2.5 , \"x\\u0041\" ] } ").unwrap();
        assert_eq!(v.path("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.path("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("xA")
        );
    }

    #[test]
    fn display_is_json() {
        assert_eq!(Value::from(5i64).to_string(), "5");
        assert_eq!(obj! {"a" => 1}.to_string(), r#"{"a":1}"#);
    }
}
